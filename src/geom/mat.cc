#include "geom/mat.hh"

#include <algorithm>

namespace av::geom {

double
det3(const Mat3 &m)
{
    return m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) -
           m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0)) +
           m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
}

Mat3
inverse3(const Mat3 &m, bool *ok)
{
    const double d = det3(m);
    if (std::fabs(d) < 1e-12) {
        if (ok)
            *ok = false;
        return Mat3::identity();
    }
    if (ok)
        *ok = true;
    Mat3 inv;
    inv(0, 0) = (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) / d;
    inv(0, 1) = (m(0, 2) * m(2, 1) - m(0, 1) * m(2, 2)) / d;
    inv(0, 2) = (m(0, 1) * m(1, 2) - m(0, 2) * m(1, 1)) / d;
    inv(1, 0) = (m(1, 2) * m(2, 0) - m(1, 0) * m(2, 2)) / d;
    inv(1, 1) = (m(0, 0) * m(2, 2) - m(0, 2) * m(2, 0)) / d;
    inv(1, 2) = (m(0, 2) * m(1, 0) - m(0, 0) * m(1, 2)) / d;
    inv(2, 0) = (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0)) / d;
    inv(2, 1) = (m(0, 1) * m(2, 0) - m(0, 0) * m(2, 1)) / d;
    inv(2, 2) = (m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0)) / d;
    return inv;
}

namespace {

/**
 * Eigen-decomposition of a symmetric 3x3 matrix via cyclic Jacobi
 * rotations. Small, robust, and plenty fast for per-voxel use.
 */
void
jacobiEigen3(const Mat3 &a, Mat3 &vectors, Vec3 &values)
{
    Mat3 m = a;
    Mat3 v = Mat3::identity();
    for (int sweep = 0; sweep < 32; ++sweep) {
        double off = std::fabs(m(0, 1)) + std::fabs(m(0, 2)) +
                     std::fabs(m(1, 2));
        if (off < 1e-14)
            break;
        for (int p = 0; p < 2; ++p) {
            for (int q = p + 1; q < 3; ++q) {
                if (std::fabs(m(p, q)) < 1e-16)
                    continue;
                const double theta =
                    (m(q, q) - m(p, p)) / (2.0 * m(p, q));
                const double t =
                    (theta >= 0 ? 1.0 : -1.0) /
                    (std::fabs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (int k = 0; k < 3; ++k) {
                    const double mkp = m(k, p), mkq = m(k, q);
                    m(k, p) = c * mkp - s * mkq;
                    m(k, q) = s * mkp + c * mkq;
                }
                for (int k = 0; k < 3; ++k) {
                    const double mpk = m(p, k), mqk = m(q, k);
                    m(p, k) = c * mpk - s * mqk;
                    m(q, k) = s * mpk + c * mqk;
                    const double vkp = v(k, p), vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }
    vectors = v;
    values = {m(0, 0), m(1, 1), m(2, 2)};
}

} // namespace

Mat3
regularizeCovariance(const Mat3 &cov, double min_eig_ratio)
{
    Mat3 vectors;
    Vec3 values;
    jacobiEigen3(cov, vectors, values);
    const double max_eig =
        std::max({values.x, values.y, values.z, 1e-9});
    const double floor_eig = max_eig * min_eig_ratio;
    Vec3 clamped = {std::max(values.x, floor_eig),
                    std::max(values.y, floor_eig),
                    std::max(values.z, floor_eig)};
    // Reassemble V * diag(clamped) * V^T.
    Mat3 out;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            double acc = 0.0;
            for (int k = 0; k < 3; ++k)
                acc += vectors(i, k) * clamped[k] * vectors(j, k);
            out(i, j) = acc;
        }
    }
    return out;
}

} // namespace av::geom
