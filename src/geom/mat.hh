/**
 * @file
 * Small fixed-size dense matrices and the solvers the estimation
 * stack needs: 3x3 covariance work for NDT voxels, 6x6 Newton steps
 * for NDT pose optimization, and the UKF's n x n covariance algebra
 * (Cholesky square roots, inverses).
 */

#ifndef AVSCOPE_GEOM_MAT_HH
#define AVSCOPE_GEOM_MAT_HH

#include <array>
#include <cmath>
#include <cstddef>

#include "geom/vec.hh"

namespace av::geom {

/**
 * Row-major fixed-size matrix.
 */
template <std::size_t R, std::size_t C>
class Mat
{
  public:
    Mat() { data_.fill(0.0); }

    /** Identity (square matrices only). */
    static Mat
    identity()
    {
        static_assert(R == C, "identity requires a square matrix");
        Mat m;
        for (std::size_t i = 0; i < R; ++i)
            m(i, i) = 1.0;
        return m;
    }

    double operator()(std::size_t r, std::size_t c) const
    { return data_[r * C + c]; }
    double &operator()(std::size_t r, std::size_t c)
    { return data_[r * C + c]; }

    Mat
    operator+(const Mat &o) const
    {
        Mat out;
        for (std::size_t i = 0; i < R * C; ++i)
            out.data_[i] = data_[i] + o.data_[i];
        return out;
    }

    Mat
    operator-(const Mat &o) const
    {
        Mat out;
        for (std::size_t i = 0; i < R * C; ++i)
            out.data_[i] = data_[i] - o.data_[i];
        return out;
    }

    Mat
    operator*(double s) const
    {
        Mat out;
        for (std::size_t i = 0; i < R * C; ++i)
            out.data_[i] = data_[i] * s;
        return out;
    }

    Mat &
    operator+=(const Mat &o)
    {
        for (std::size_t i = 0; i < R * C; ++i)
            data_[i] += o.data_[i];
        return *this;
    }

    template <std::size_t C2>
    Mat<R, C2>
    operator*(const Mat<C, C2> &o) const
    {
        Mat<R, C2> out;
        for (std::size_t i = 0; i < R; ++i) {
            for (std::size_t k = 0; k < C; ++k) {
                const double a = (*this)(i, k);
                if (a == 0.0)
                    continue;
                for (std::size_t j = 0; j < C2; ++j)
                    out(i, j) += a * o(k, j);
            }
        }
        return out;
    }

    Mat<C, R>
    transposed() const
    {
        Mat<C, R> out;
        for (std::size_t i = 0; i < R; ++i)
            for (std::size_t j = 0; j < C; ++j)
                out(j, i) = (*this)(i, j);
        return out;
    }

    /** Matrix-vector product with a std::array. */
    std::array<double, R>
    apply(const std::array<double, C> &v) const
    {
        std::array<double, R> out{};
        for (std::size_t i = 0; i < R; ++i) {
            double acc = 0.0;
            for (std::size_t j = 0; j < C; ++j)
                acc += (*this)(i, j) * v[j];
            out[i] = acc;
        }
        return out;
    }

    /** Frobenius norm. */
    double
    frobeniusNorm() const
    {
        double acc = 0.0;
        for (double v : data_)
            acc += v * v;
        return std::sqrt(acc);
    }

  private:
    std::array<double, R * C> data_;
};

using Mat3 = Mat<3, 3>;
using Mat6 = Mat<6, 6>;

/** Mat3 * Vec3. */
inline Vec3
mul(const Mat3 &m, const Vec3 &v)
{
    return {m(0, 0) * v.x + m(0, 1) * v.y + m(0, 2) * v.z,
            m(1, 0) * v.x + m(1, 1) * v.y + m(1, 2) * v.z,
            m(2, 0) * v.x + m(2, 1) * v.y + m(2, 2) * v.z};
}

/** Outer product v * v^T. */
inline Mat3
outer(const Vec3 &a, const Vec3 &b)
{
    Mat3 m;
    const double av[3] = {a.x, a.y, a.z};
    const double bv[3] = {b.x, b.y, b.z};
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            m(i, j) = av[i] * bv[j];
    return m;
}

/** Determinant of a 3x3 matrix. */
double det3(const Mat3 &m);

/**
 * Inverse of a 3x3 matrix via adjugate.
 * @param m input
 * @param ok set false when |det| < 1e-12 (result is then identity)
 */
Mat3 inverse3(const Mat3 &m, bool *ok = nullptr);

/**
 * Regularize a covariance so its smallest eigenvalue is at least
 * @p min_eig_ratio times its largest (Magnusson's NDT trick for
 * near-singular voxel covariances). Symmetric input assumed.
 */
Mat3 regularizeCovariance(const Mat3 &cov, double min_eig_ratio = 0.01);

/**
 * Solve the SPD system A x = b with Cholesky; falls back to adding
 * progressively larger diagonal damping (Levenberg style) when A is
 * not positive definite.
 *
 * @return true on success.
 */
template <std::size_t N>
bool
solveCholesky(const Mat<N, N> &a, const std::array<double, N> &b,
              std::array<double, N> &x)
{
    for (int attempt = 0; attempt < 6; ++attempt) {
        const double damping =
            attempt == 0 ? 0.0 : std::pow(10.0, attempt - 4);
        Mat<N, N> l;
        bool ok = true;
        for (std::size_t i = 0; i < N && ok; ++i) {
            for (std::size_t j = 0; j <= i; ++j) {
                double sum = a(i, j) + (i == j ? damping : 0.0);
                for (std::size_t k = 0; k < j; ++k)
                    sum -= l(i, k) * l(j, k);
                if (i == j) {
                    if (sum <= 1e-12) {
                        ok = false;
                        break;
                    }
                    l(i, i) = std::sqrt(sum);
                } else {
                    l(i, j) = sum / l(j, j);
                }
            }
        }
        if (!ok)
            continue;
        // Forward substitution: L y = b.
        std::array<double, N> y{};
        for (std::size_t i = 0; i < N; ++i) {
            double sum = b[i];
            for (std::size_t k = 0; k < i; ++k)
                sum -= l(i, k) * y[k];
            y[i] = sum / l(i, i);
        }
        // Back substitution: L^T x = y.
        for (std::size_t ii = N; ii-- > 0;) {
            double sum = y[ii];
            for (std::size_t k = ii + 1; k < N; ++k)
                sum -= l(k, ii) * x[k];
            x[ii] = sum / l(ii, ii);
        }
        return true;
    }
    return false;
}

/**
 * Lower-triangular Cholesky factor of an SPD matrix (for UKF sigma
 * points). @return true on success; on failure @p l is untouched.
 */
template <std::size_t N>
bool
choleskyFactor(const Mat<N, N> &a, Mat<N, N> &l)
{
    Mat<N, N> out;
    for (std::size_t i = 0; i < N; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= out(i, k) * out(j, k);
            if (i == j) {
                if (sum <= 0.0)
                    return false;
                out(i, i) = std::sqrt(sum);
            } else {
                out(i, j) = sum / out(j, j);
            }
        }
    }
    l = out;
    return true;
}

/**
 * General NxN inverse via Gauss-Jordan with partial pivoting.
 * @return true on success (|pivot| always > 1e-12).
 */
template <std::size_t N>
bool
inverseGauss(const Mat<N, N> &a, Mat<N, N> &inv)
{
    Mat<N, N> work = a;
    Mat<N, N> out = Mat<N, N>::identity();
    for (std::size_t col = 0; col < N; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < N; ++r)
            if (std::fabs(work(r, col)) > std::fabs(work(pivot, col)))
                pivot = r;
        if (std::fabs(work(pivot, col)) < 1e-12)
            return false;
        if (pivot != col) {
            for (std::size_t c = 0; c < N; ++c) {
                std::swap(work(pivot, c), work(col, c));
                std::swap(out(pivot, c), out(col, c));
            }
        }
        const double d = work(col, col);
        for (std::size_t c = 0; c < N; ++c) {
            work(col, c) /= d;
            out(col, c) /= d;
        }
        for (std::size_t r = 0; r < N; ++r) {
            if (r == col)
                continue;
            const double f = work(r, col);
            if (f == 0.0)
                continue;
            for (std::size_t c = 0; c < N; ++c) {
                work(r, c) -= f * work(col, c);
                out(r, c) -= f * out(col, c);
            }
        }
    }
    inv = out;
    return true;
}

} // namespace av::geom

#endif // AVSCOPE_GEOM_MAT_HH
