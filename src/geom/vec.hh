/**
 * @file
 * 2-D and 3-D vector types.
 *
 * avscope re-implements the point-cloud and estimation math that
 * Autoware gets from Eigen/PCL; these small value types are the
 * foundation.
 */

#ifndef AVSCOPE_GEOM_VEC_HH
#define AVSCOPE_GEOM_VEC_HH

#include <cmath>

namespace av::geom {

/** A 2-D vector / point. */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(const Vec2 &o) const
    { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const
    { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
    constexpr Vec2 operator-() const { return {-x, -y}; }

    Vec2 &operator+=(const Vec2 &o) { x += o.x; y += o.y; return *this; }
    Vec2 &operator-=(const Vec2 &o) { x -= o.x; y -= o.y; return *this; }
    Vec2 &operator*=(double s) { x *= s; y *= s; return *this; }

    constexpr double dot(const Vec2 &o) const { return x * o.x + y * o.y; }
    /** Z-component of the 3-D cross product. */
    constexpr double cross(const Vec2 &o) const { return x * o.y - y * o.x; }
    double norm() const { return std::sqrt(x * x + y * y); }
    constexpr double squaredNorm() const { return x * x + y * y; }
    /** Unit vector; zero vector stays zero. */
    Vec2 normalized() const
    {
        const double n = norm();
        return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
    }
    /** Angle from +x axis, in (-pi, pi]. */
    double heading() const { return std::atan2(y, x); }
    /** Rotate counterclockwise by @p angle radians. */
    Vec2 rotated(double angle) const
    {
        const double c = std::cos(angle), s = std::sin(angle);
        return {c * x - s * y, s * x + c * y};
    }
};

constexpr Vec2 operator*(double s, const Vec2 &v) { return v * s; }

/** A 3-D vector / point. */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(double s) const
    { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const
    { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    Vec3 &operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

    constexpr double dot(const Vec3 &o) const
    { return x * o.x + y * o.y + z * o.z; }
    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y,
                z * o.x - x * o.z,
                x * o.y - y * o.x};
    }
    double norm() const { return std::sqrt(squaredNorm()); }
    constexpr double squaredNorm() const { return x * x + y * y + z * z; }
    Vec3 normalized() const
    {
        const double n = norm();
        return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
    }
    constexpr Vec2 xy() const { return {x, y}; }

    double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
    double &operator[](int i)
    { return i == 0 ? x : (i == 1 ? y : z); }
};

constexpr Vec3 operator*(double s, const Vec3 &v) { return v * s; }

/** Squared Euclidean distance between two 3-D points. */
constexpr double
squaredDistance(const Vec3 &a, const Vec3 &b)
{
    return (a - b).squaredNorm();
}

/** Euclidean distance between two 3-D points. */
inline double
distance(const Vec3 &a, const Vec3 &b)
{
    return (a - b).norm();
}

} // namespace av::geom

#endif // AVSCOPE_GEOM_VEC_HH
