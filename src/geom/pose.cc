#include "geom/pose.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace av::geom {

double
normalizeAngle(double a)
{
    while (a > M_PI)
        a -= 2.0 * M_PI;
    while (a <= -M_PI)
        a += 2.0 * M_PI;
    return a;
}

Quat
Quat::fromRpy(double roll, double pitch, double yaw)
{
    const double cr = std::cos(roll * 0.5), sr = std::sin(roll * 0.5);
    const double cp = std::cos(pitch * 0.5), sp = std::sin(pitch * 0.5);
    const double cy = std::cos(yaw * 0.5), sy = std::sin(yaw * 0.5);
    Quat q;
    q.w = cr * cp * cy + sr * sp * sy;
    q.x = sr * cp * cy - cr * sp * sy;
    q.y = cr * sp * cy + sr * cp * sy;
    q.z = cr * cp * sy - sr * sp * cy;
    return q;
}

Quat
Quat::fromAxisAngle(const Vec3 &axis, double angle)
{
    const Vec3 u = axis.normalized();
    const double h = angle * 0.5;
    const double s = std::sin(h);
    return {std::cos(h), u.x * s, u.y * s, u.z * s};
}

Quat
Quat::operator*(const Quat &o) const
{
    return {w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w};
}

Vec3
Quat::rotate(const Vec3 &v) const
{
    // v' = v + 2 q_vec x (q_vec x v + w v)
    const Vec3 qv{x, y, z};
    const Vec3 t = qv.cross(v) * 2.0;
    return v + t * w + qv.cross(t);
}

Mat3
Quat::toMatrix() const
{
    Mat3 m;
    const double xx = x * x, yy = y * y, zz = z * z;
    const double xy = x * y, xz = x * z, yz = y * z;
    const double wx = w * x, wy = w * y, wz = w * z;
    m(0, 0) = 1 - 2 * (yy + zz);
    m(0, 1) = 2 * (xy - wz);
    m(0, 2) = 2 * (xz + wy);
    m(1, 0) = 2 * (xy + wz);
    m(1, 1) = 1 - 2 * (xx + zz);
    m(1, 2) = 2 * (yz - wx);
    m(2, 0) = 2 * (xz - wy);
    m(2, 1) = 2 * (yz + wx);
    m(2, 2) = 1 - 2 * (xx + yy);
    return m;
}

void
Quat::toRpy(double &roll, double &pitch, double &yaw) const
{
    const double sinr = 2.0 * (w * x + y * z);
    const double cosr = 1.0 - 2.0 * (x * x + y * y);
    roll = std::atan2(sinr, cosr);

    const double sinp = 2.0 * (w * y - z * x);
    pitch = std::fabs(sinp) >= 1.0 ? std::copysign(M_PI / 2.0, sinp)
                                   : std::asin(sinp);

    const double siny = 2.0 * (w * z + x * y);
    const double cosy = 1.0 - 2.0 * (y * y + z * z);
    yaw = std::atan2(siny, cosy);
}

double
Quat::yaw() const
{
    const double siny = 2.0 * (w * z + x * y);
    const double cosy = 1.0 - 2.0 * (y * y + z * z);
    return std::atan2(siny, cosy);
}

Quat
Quat::normalized() const
{
    const double n = std::sqrt(w * w + x * x + y * y + z * z);
    if (n <= 0.0)
        return {};
    return {w / n, x / n, y / n, z / n};
}

Pose
Pose::compose(const Pose &other) const
{
    return {apply(other.t), (r * other.r).normalized()};
}

Pose
Pose::inverse() const
{
    const Quat ri = r.conjugate();
    return {ri.rotate(-t), ri};
}

void
Aabb::expand(const Vec3 &p)
{
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
}

bool
rayAabb(const Vec3 &origin, const Vec3 &dir, const Aabb &box,
        double &t_hit)
{
    double tmin = 0.0;
    double tmax = std::numeric_limits<double>::infinity();
    for (int axis = 0; axis < 3; ++axis) {
        const double o = origin[axis];
        const double d = dir[axis];
        const double lo = box.lo[axis];
        const double hi = box.hi[axis];
        if (std::fabs(d) < 1e-12) {
            if (o < lo || o > hi)
                return false;
            continue;
        }
        double t0 = (lo - o) / d;
        double t1 = (hi - o) / d;
        if (t0 > t1)
            std::swap(t0, t1);
        tmin = std::max(tmin, t0);
        tmax = std::min(tmax, t1);
        if (tmin > tmax)
            return false;
    }
    t_hit = tmin;
    return true;
}

void
OrientedBox::corners(Vec2 out[4]) const
{
    const double hl = length * 0.5;
    const double hw = width * 0.5;
    out[0] = pose.apply({+hl, +hw});
    out[1] = pose.apply({-hl, +hw});
    out[2] = pose.apply({-hl, -hw});
    out[3] = pose.apply({+hl, -hw});
}

bool
OrientedBox::containsXy(const Vec2 &world) const
{
    const Vec2 local = pose.toLocal(world);
    return std::fabs(local.x) <= length * 0.5 &&
           std::fabs(local.y) <= width * 0.5;
}

Aabb
OrientedBox::aabb() const
{
    Vec2 c[4];
    corners(c);
    Aabb box{{c[0].x, c[0].y, zMin}, {c[0].x, c[0].y, zMax}};
    for (int i = 1; i < 4; ++i) {
        box.expand({c[i].x, c[i].y, zMin});
        box.expand({c[i].x, c[i].y, zMax});
    }
    return box;
}

bool
rayOrientedBox(const Vec3 &origin, const Vec3 &dir,
               const OrientedBox &box, double &t_hit)
{
    // Rotate the ray into the box frame, then slab-test an AABB
    // centered at the origin.
    const Vec2 o2 = box.pose.toLocal(origin.xy());
    const Vec2 d2 = Vec2{dir.x, dir.y}.rotated(-box.pose.yaw);
    const Vec3 o{o2.x, o2.y, origin.z};
    const Vec3 d{d2.x, d2.y, dir.z};
    const Aabb local{{-box.length * 0.5, -box.width * 0.5, box.zMin},
                     {+box.length * 0.5, +box.width * 0.5, box.zMax}};
    return rayAabb(o, d, local, t_hit);
}

} // namespace av::geom
