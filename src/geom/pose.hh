/**
 * @file
 * Rigid-body transforms: quaternions, SE(3) poses, and the planar
 * Pose2 the driving logic uses.
 */

#ifndef AVSCOPE_GEOM_POSE_HH
#define AVSCOPE_GEOM_POSE_HH

#include "geom/mat.hh"
#include "geom/vec.hh"

namespace av::geom {

/** Wrap an angle into (-pi, pi]. */
double normalizeAngle(double a);

/** Unit quaternion (w, x, y, z). */
struct Quat
{
    double w = 1.0;
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    /** From roll/pitch/yaw (x-y-z intrinsic, Autoware convention). */
    static Quat fromRpy(double roll, double pitch, double yaw);

    /** From a rotation about an arbitrary axis. */
    static Quat fromAxisAngle(const Vec3 &axis, double angle);

    /** Hamilton product. */
    Quat operator*(const Quat &o) const;

    /** Conjugate (inverse for unit quaternions). */
    Quat conjugate() const { return {w, -x, -y, -z}; }

    /** Rotate a vector. */
    Vec3 rotate(const Vec3 &v) const;

    /** Rotation matrix. */
    Mat3 toMatrix() const;

    /** Roll/pitch/yaw extraction. */
    void toRpy(double &roll, double &pitch, double &yaw) const;

    /** Yaw only (cheap; the planar stack mostly needs this). */
    double yaw() const;

    /** Renormalize to unit length. */
    Quat normalized() const;
};

/** A full 6-DoF pose: rotation then translation. */
struct Pose
{
    Vec3 t;
    Quat r;

    static Pose
    fromXyzRpy(double x, double y, double z,
               double roll, double pitch, double yaw)
    {
        return {{x, y, z}, Quat::fromRpy(roll, pitch, yaw)};
    }

    /** Apply to a point: r * p + t. */
    Vec3 apply(const Vec3 &p) const { return r.rotate(p) + t; }

    /** Compose: this * other (other applied first). */
    Pose compose(const Pose &other) const;

    /** Inverse transform. */
    Pose inverse() const;
};

/** Planar pose for driving logic: position + heading. */
struct Pose2
{
    Vec2 p;
    double yaw = 0.0;

    /** Transform a local-frame point into the world frame. */
    Vec2
    apply(const Vec2 &local) const
    {
        return p + local.rotated(yaw);
    }

    /** Transform a world-frame point into this pose's local frame. */
    Vec2
    toLocal(const Vec2 &world) const
    {
        return (world - p).rotated(-yaw);
    }

    /** Lift to a full 3-D pose at height @p z. */
    Pose
    lift(double z = 0.0) const
    {
        return {{p.x, p.y, z}, Quat::fromRpy(0.0, 0.0, yaw)};
    }
};

/** Axis-aligned box. */
struct Aabb
{
    Vec3 lo;
    Vec3 hi;

    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y &&
               p.y <= hi.y && p.z >= lo.z && p.z <= hi.z;
    }

    Vec3 center() const { return (lo + hi) * 0.5; }
    Vec3 extent() const { return hi - lo; }

    /** Grow to include @p p. */
    void expand(const Vec3 &p);
};

/**
 * Slab-method ray/AABB intersection.
 *
 * @param origin ray origin
 * @param dir    ray direction (need not be unit length)
 * @param box    target box
 * @param t_hit  out: smallest t >= 0 with origin + t*dir inside box
 * @return true when the ray hits the box at t >= 0
 */
bool rayAabb(const Vec3 &origin, const Vec3 &dir, const Aabb &box,
             double &t_hit);

/**
 * An oriented (yaw-only) box footprint in the plane with a height
 * range — the shape every traffic participant occupies.
 */
struct OrientedBox
{
    Pose2 pose;      ///< center position + heading
    double length = 0.0; ///< along heading
    double width = 0.0;  ///< across heading
    double zMin = 0.0;
    double zMax = 0.0;

    /** Footprint corners in world frame (counterclockwise). */
    void corners(Vec2 out[4]) const;

    /** True when the world-frame point lies inside the footprint. */
    bool containsXy(const Vec2 &world) const;

    /** Conservative world-frame AABB. */
    Aabb aabb() const;
};

/**
 * Ray intersection with an oriented box (treated as an extruded
 * rectangle between zMin and zMax).
 */
bool rayOrientedBox(const Vec3 &origin, const Vec3 &dir,
                    const OrientedBox &box, double &t_hit);

} // namespace av::geom

#endif // AVSCOPE_GEOM_POSE_HH
