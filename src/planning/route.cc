#include "planning/route.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/logging.hh"

namespace av::plan {

std::uint32_t
RouteNetwork::addNode(const geom::Vec2 &position)
{
    nodes_.push_back(Node{position, {}});
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void
RouteNetwork::addEdge(std::uint32_t a, std::uint32_t b)
{
    AV_ASSERT(a < nodes_.size() && b < nodes_.size(),
              "edge references unknown node");
    nodes_[a].out.push_back(b);
}

std::uint32_t
RouteNetwork::nearestNode(const geom::Vec2 &p) const
{
    AV_ASSERT(!nodes_.empty(), "empty route network");
    std::uint32_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
        const double d = (nodes_[i].position - p).squaredNorm();
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    return best;
}

std::vector<geom::Vec2>
RouteNetwork::plan(std::uint32_t from, std::uint32_t to) const
{
    AV_ASSERT(from < nodes_.size() && to < nodes_.size(),
              "plan references unknown node");
    const auto heuristic = [&](std::uint32_t n) {
        return (nodes_[n].position - nodes_[to].position).norm();
    };

    struct Entry
    {
        double f;
        std::uint32_t node;
        bool operator>(const Entry &o) const { return f > o.f; }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        open;
    std::vector<double> g(nodes_.size(),
                          std::numeric_limits<double>::infinity());
    std::vector<std::int64_t> parent(nodes_.size(), -1);

    g[from] = 0.0;
    open.push({heuristic(from), from});
    while (!open.empty()) {
        const Entry e = open.top();
        open.pop();
        const std::uint32_t n = e.node;
        if (n == to)
            break;
        if (e.f > g[n] + heuristic(n) + 1e-9)
            continue; // stale entry
        for (const std::uint32_t succ : nodes_[n].out) {
            const double cost =
                (nodes_[succ].position - nodes_[n].position).norm();
            if (g[n] + cost < g[succ]) {
                g[succ] = g[n] + cost;
                parent[succ] = n;
                open.push({g[succ] + heuristic(succ), succ});
            }
        }
    }

    std::vector<geom::Vec2> path;
    if (from != to && parent[to] < 0)
        return path; // unreachable
    std::int64_t cur = to;
    while (cur >= 0) {
        path.push_back(nodes_[static_cast<std::size_t>(cur)]
                           .position);
        if (cur == static_cast<std::int64_t>(from))
            break;
        cur = parent[static_cast<std::size_t>(cur)];
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::vector<geom::Vec2>
RouteNetwork::plan(const geom::Vec2 &from, const geom::Vec2 &to) const
{
    return plan(nearestNode(from), nearestNode(to));
}

RouteNetwork
RouteNetwork::fromLoop(const std::vector<geom::Vec2> &loop,
                       double spacing)
{
    AV_ASSERT(loop.size() >= 3, "loop needs at least three corners");
    AV_ASSERT(spacing > 0.1, "spacing too small");
    RouteNetwork net;
    std::vector<std::uint32_t> ids;
    for (std::size_t i = 0; i < loop.size(); ++i) {
        const geom::Vec2 a = loop[i];
        const geom::Vec2 b = loop[(i + 1) % loop.size()];
        const double len = (b - a).norm();
        const auto steps = std::max<std::size_t>(
            1, static_cast<std::size_t>(len / spacing));
        for (std::size_t s = 0; s < steps; ++s) {
            const double frac =
                static_cast<double>(s) / static_cast<double>(steps);
            ids.push_back(net.addNode(a + (b - a) * frac));
        }
    }
    for (std::size_t i = 0; i < ids.size(); ++i)
        net.addEdge(ids[i], ids[(i + 1) % ids.size()]);
    return net;
}

std::vector<geom::Vec2>
densifyPath(const std::vector<geom::Vec2> &path, double spacing)
{
    std::vector<geom::Vec2> out;
    if (path.empty())
        return out;
    out.push_back(path.front());
    for (std::size_t i = 1; i < path.size(); ++i) {
        const geom::Vec2 a = path[i - 1];
        const geom::Vec2 b = path[i];
        const double len = (b - a).norm();
        const auto steps = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::ceil(len / spacing)));
        for (std::size_t s = 1; s <= steps; ++s) {
            out.push_back(a + (b - a) * (static_cast<double>(s) /
                                         static_cast<double>(steps)));
        }
    }
    return out;
}

} // namespace av::plan
