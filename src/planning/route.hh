/**
 * @file
 * Global route planning — Autoware's op_global_planner (paper
 * §II-B: the global planner defines a high-level route to the
 * destination). A directed waypoint graph with A* search; the
 * stack's lane-level map annotation the paper lacked for its Nagoya
 * drive (§III-C) and therefore could not profile — we build it as
 * the actuation layer for closed-loop use.
 */

#ifndef AVSCOPE_PLANNING_ROUTE_HH
#define AVSCOPE_PLANNING_ROUTE_HH

#include <cstdint>
#include <vector>

#include "geom/vec.hh"

namespace av::plan {

/**
 * Directed waypoint graph.
 */
class RouteNetwork
{
  public:
    /** Add a waypoint; returns its id. */
    std::uint32_t addNode(const geom::Vec2 &position);

    /** Directed edge a -> b (cost = Euclidean length). */
    void addEdge(std::uint32_t a, std::uint32_t b);

    std::size_t nodeCount() const { return nodes_.size(); }
    const geom::Vec2 &position(std::uint32_t id) const
    {
        return nodes_[id].position;
    }

    /** Nearest node to a world position (linear scan). */
    std::uint32_t nearestNode(const geom::Vec2 &p) const;

    /**
     * A* shortest path between nodes; empty when unreachable.
     * @return waypoint positions from @p from to @p to inclusive
     */
    std::vector<geom::Vec2> plan(std::uint32_t from,
                                 std::uint32_t to) const;

    /** Convenience: plan between arbitrary positions. */
    std::vector<geom::Vec2> plan(const geom::Vec2 &from,
                                 const geom::Vec2 &to) const;

    /**
     * Build a network from a closed loop of corner points, sampled
     * every @p spacing meters, with edges along the driving
     * direction.
     */
    static RouteNetwork fromLoop(const std::vector<geom::Vec2> &loop,
                                 double spacing);

  private:
    struct Node
    {
        geom::Vec2 position;
        std::vector<std::uint32_t> out; ///< successor node ids
    };
    std::vector<Node> nodes_;
};

/**
 * Densify a path so consecutive waypoints are at most @p spacing
 * apart (the local planner and pure pursuit want dense paths).
 */
std::vector<geom::Vec2>
densifyPath(const std::vector<geom::Vec2> &path, double spacing);

} // namespace av::plan

#endif // AVSCOPE_PLANNING_ROUTE_HH
