#include "planning/vehicle.hh"

#include <cmath>

namespace av::plan {

void
VehicleModel::step(const Twist &command, double dt)
{
    // First-order lag toward the commanded velocities.
    const double blend = tau_ > 0.0
                             ? 1.0 - std::exp(-dt / tau_)
                             : 1.0;
    speed_ += blend * (command.linear - speed_);
    yawRate_ += blend * (command.angular - yawRate_);

    // Midpoint integration of the unicycle.
    const double mid_yaw = pose_.yaw + 0.5 * yawRate_ * dt;
    pose_.p.x += speed_ * std::cos(mid_yaw) * dt;
    pose_.p.y += speed_ * std::sin(mid_yaw) * dt;
    pose_.yaw = geom::normalizeAngle(pose_.yaw + yawRate_ * dt);
}

} // namespace av::plan
