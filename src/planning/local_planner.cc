#include "planning/local_planner.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace av::plan {

double
costmapAt(const perception::Costmap &costmap, const geom::Vec2 &world)
{
    if (costmap.cost.empty())
        return 0.0;
    const double gx = (world.x - costmap.origin.x) /
                      costmap.resolution;
    const double gy = (world.y - costmap.origin.y) /
                      costmap.resolution;
    if (gx < 0 || gy < 0 ||
        gx >= static_cast<double>(costmap.cellsX) ||
        gy >= static_cast<double>(costmap.cellsY))
        return 0.0;
    return costmap.at(static_cast<std::uint32_t>(gx),
                      static_cast<std::uint32_t>(gy));
}

namespace {

/** Index of the global waypoint nearest to @p p, searching ahead. */
std::size_t
nearestIndex(const std::vector<geom::Vec2> &path, const geom::Vec2 &p)
{
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < path.size(); ++i) {
        const double d = (path[i] - p).squaredNorm();
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    return best;
}

} // namespace

Trajectory
planLocal(const std::vector<geom::Vec2> &global, const geom::Pose2 &ego,
          const perception::Costmap &costmap,
          const LocalPlannerConfig &config)
{
    AV_ASSERT(config.rollouts >= 1, "need at least one rollout");
    Trajectory best;
    best.cost = std::numeric_limits<double>::infinity();
    if (global.size() < 2)
        return best;

    const std::size_t start = nearestIndex(global, ego.p);
    const auto steps = static_cast<std::size_t>(config.horizon /
                                                config.step);
    const int half =
        static_cast<int>(config.rollouts) / 2;

    for (int r = -half; r <= half; ++r) {
        const double offset =
            half > 0 ? config.maxLateralOffset * r / half : 0.0;
        Trajectory candidate;
        candidate.rolloutIndex = r;
        double obstacle_cost = 0.0;
        bool blocked = false;
        double block_distance = config.horizon;

        for (std::size_t s = 0; s < steps; ++s) {
            const std::size_t i = (start + s) % global.size();
            const std::size_t j = (i + 1) % global.size();
            const geom::Vec2 dir =
                (global[j] - global[i]).normalized();
            const geom::Vec2 normal{-dir.y, dir.x};
            const geom::Vec2 p = global[i] + normal * offset;
            const double c = costmapAt(costmap, p);
            obstacle_cost += c;
            if (c >= config.blockThreshold && !blocked) {
                blocked = true;
                block_distance =
                    static_cast<double>(s) * config.step;
            }
            candidate.points.push_back(p);
        }

        candidate.cost =
            config.obstacleCostWeight * obstacle_cost +
            config.offsetCostWeight * std::fabs(offset) +
            (blocked ? 1e3 - block_distance : 0.0);

        // Speed profile: cruise, slow for curvature (comfort
        // lateral acceleration), slow through soft cost, stop short
        // of a blocking cell.
        candidate.speeds.assign(candidate.points.size(),
                                config.cruiseSpeed);
        const std::size_t w = 3; // curvature window (points)
        for (std::size_t s = 0; s + 2 * w < candidate.points.size();
             ++s) {
            const geom::Vec2 d0 = (candidate.points[s + w] -
                                   candidate.points[s]);
            const geom::Vec2 d1 = (candidate.points[s + 2 * w] -
                                   candidate.points[s + w]);
            const double arc = d0.norm() + d1.norm();
            if (arc < 1e-6)
                continue;
            const double dyaw = std::fabs(geom::normalizeAngle(
                d1.heading() - d0.heading()));
            const double kappa = dyaw / arc;
            if (kappa < 1e-4)
                continue;
            const double v_max =
                std::sqrt(config.maxLateralAccel / kappa);
            // Brake *into* the curve: apply to the window and a
            // few points before it.
            const std::size_t from = s > 2 * w ? s - 2 * w : 0;
            for (std::size_t k = from; k <= s + 2 * w; ++k)
                candidate.speeds[k] =
                    std::min(candidate.speeds[k], v_max);
        }
        for (std::size_t s = 0; s < candidate.points.size(); ++s) {
            const double c =
                costmapAt(costmap, candidate.points[s]);
            if (c > config.slowThreshold)
                candidate.speeds[s] =
                    config.cruiseSpeed *
                    std::max(0.2, 1.0 - c);
            if (blocked) {
                const double dist =
                    static_cast<double>(s) * config.step;
                if (dist >= block_distance - 4.0)
                    candidate.speeds[s] = 0.0;
                else
                    candidate.speeds[s] = std::min(
                        candidate.speeds[s],
                        config.cruiseSpeed *
                            (block_distance - dist) /
                            config.horizon);
            }
        }

        // Backward pass: enforce a comfortable deceleration so the
        // vehicle brakes early enough for curves and stops
        // (v_i^2 <= v_{i+1}^2 + 2 a ds).
        const double decel = 2.5;
        for (std::size_t s = candidate.speeds.size(); s-- > 1;) {
            const double ds = (candidate.points[s] -
                               candidate.points[s - 1])
                                  .norm();
            const double allowed = std::sqrt(
                candidate.speeds[s] * candidate.speeds[s] +
                2.0 * decel * ds);
            candidate.speeds[s - 1] =
                std::min(candidate.speeds[s - 1], allowed);
        }

        if (candidate.cost < best.cost)
            best = std::move(candidate);
    }
    return best;
}

} // namespace av::plan
