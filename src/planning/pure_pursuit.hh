/**
 * @file
 * Pure pursuit path tracking + twist filtering — Autoware's
 * pure_pursuit and twist_filter nodes (paper §II-B "Motion").
 */

#ifndef AVSCOPE_PLANNING_PURE_PURSUIT_HH
#define AVSCOPE_PLANNING_PURE_PURSUIT_HH

#include "geom/pose.hh"
#include "planning/local_planner.hh"

namespace av::plan {

/** Velocity command (linear + angular), a geometry_msgs::Twist. */
struct Twist
{
    double linear = 0.0;  ///< m/s
    double angular = 0.0; ///< rad/s
};

/** Pure-pursuit parameters. */
struct PurePursuitConfig
{
    double lookaheadGain = 1.2;  ///< lookahead = gain * speed
    double minLookahead = 4.0;   ///< meters
    double maxAngular = 0.8;     ///< rad/s clamp
};

/**
 * Compute the twist that steers @p ego toward the trajectory.
 * Returns a zero twist for an empty/exhausted trajectory.
 */
Twist purePursuit(const Trajectory &trajectory, const geom::Pose2 &ego,
                  double current_speed,
                  const PurePursuitConfig &config =
                      PurePursuitConfig());

/** twist_filter parameters (low-pass + rate limits). */
struct TwistFilterConfig
{
    double lowpassAlpha = 0.4;    ///< EWMA blend toward the command
    double maxLinearAccel = 2.5;  ///< m/s per second
    double maxAngularRate = 1.5;  ///< rad/s per second
};

/**
 * The low-pass / rate-limit filter Autoware applies before the
 * drive-by-wire interface. Stateful: feed commands in time order.
 */
class TwistFilter
{
  public:
    explicit TwistFilter(const TwistFilterConfig &config =
                             TwistFilterConfig())
        : config_(config)
    {}

    /**
     * Filter one command.
     * @param dt seconds since the previous command
     */
    Twist apply(const Twist &command, double dt);

    const Twist &state() const { return state_; }
    void reset() { state_ = Twist{}; }

  private:
    TwistFilterConfig config_;
    Twist state_;
};

} // namespace av::plan

#endif // AVSCOPE_PLANNING_PURE_PURSUIT_HH
