/**
 * @file
 * Kinematic vehicle model for closed-loop driving: integrates twist
 * commands (the drive-by-wire interface the paper's Fig. 1 ends in)
 * into an ego pose.
 */

#ifndef AVSCOPE_PLANNING_VEHICLE_HH
#define AVSCOPE_PLANNING_VEHICLE_HH

#include "geom/pose.hh"
#include "planning/pure_pursuit.hh"

namespace av::plan {

/**
 * Unicycle kinematics with first-order actuation lag.
 */
class VehicleModel
{
  public:
    explicit VehicleModel(const geom::Pose2 &start = geom::Pose2{},
                          double actuation_tau = 0.25)
        : pose_(start), tau_(actuation_tau)
    {}

    /** Integrate @p dt seconds under the last commanded twist. */
    void step(const Twist &command, double dt);

    const geom::Pose2 &pose() const { return pose_; }
    double speed() const { return speed_; }
    double yawRate() const { return yawRate_; }

    void teleport(const geom::Pose2 &pose) { pose_ = pose; }

  private:
    geom::Pose2 pose_;
    double speed_ = 0.0;
    double yawRate_ = 0.0;
    double tau_;
};

} // namespace av::plan

#endif // AVSCOPE_PLANNING_VEHICLE_HH
