#include "planning/pure_pursuit.hh"

#include <algorithm>
#include <cmath>

namespace av::plan {

Twist
purePursuit(const Trajectory &trajectory, const geom::Pose2 &ego,
            double current_speed, const PurePursuitConfig &config)
{
    Twist out;
    if (trajectory.points.empty())
        return out;

    const double lookahead =
        std::max(config.minLookahead,
                 config.lookaheadGain * current_speed);

    // First trajectory point at or beyond the lookahead distance
    // that lies ahead of the vehicle.
    std::size_t target = trajectory.points.size() - 1;
    double target_speed = trajectory.speeds.empty()
                              ? 0.0
                              : trajectory.speeds.back();
    for (std::size_t i = 0; i < trajectory.points.size(); ++i) {
        const geom::Vec2 local =
            ego.toLocal(trajectory.points[i]);
        if (local.x <= 0.0)
            continue; // behind us
        if (local.norm() >= lookahead) {
            target = i;
            if (i < trajectory.speeds.size())
                target_speed = trajectory.speeds[i];
            break;
        }
    }

    const geom::Vec2 local = ego.toLocal(trajectory.points[target]);
    const double d2 = local.squaredNorm();
    if (d2 < 1e-6)
        return out;

    // Pure pursuit curvature: k = 2*y / L^2 in the vehicle frame.
    const double curvature = 2.0 * local.y / d2;
    // Speed: the most conservative annotation between here and the
    // lookahead target (so short-notice corners are respected).
    double speed = target_speed;
    for (std::size_t i = 0;
         i <= target && i < trajectory.speeds.size(); ++i)
        speed = std::min(speed, trajectory.speeds[i]);
    // While badly misaligned with the path (mid-corner), hold a
    // maneuvering speed instead of accelerating through the swing.
    const double bearing = std::atan2(local.y, local.x);
    if (std::fabs(bearing) > 0.3)
        speed = std::min(speed,
                         std::max(1.5, 3.0 * std::cos(bearing)));
    out.linear = std::max(0.0, speed);
    out.angular = std::clamp(curvature * out.linear,
                             -config.maxAngular, config.maxAngular);
    return out;
}

Twist
TwistFilter::apply(const Twist &command, double dt)
{
    dt = std::max(dt, 1e-3);
    // Low-pass blend.
    Twist blended;
    blended.linear = state_.linear +
                     config_.lowpassAlpha *
                         (command.linear - state_.linear);
    blended.angular = state_.angular +
                      config_.lowpassAlpha *
                          (command.angular - state_.angular);
    // Rate limits.
    const double max_dv = config_.maxLinearAccel * dt;
    const double max_dw = config_.maxAngularRate * dt;
    blended.linear =
        std::clamp(blended.linear, state_.linear - max_dv,
                   state_.linear + max_dv);
    blended.angular =
        std::clamp(blended.angular, state_.angular - max_dw,
                   state_.angular + max_dw);
    state_ = blended;
    return blended;
}

} // namespace av::plan
