/**
 * @file
 * Local (rollout) planner — Autoware's op_local_planner: generate
 * candidate trajectories as lateral offsets of the global path,
 * cost them against the perception costmap, pick the cheapest, and
 * attach target speeds (slowing for obstacles ahead).
 */

#ifndef AVSCOPE_PLANNING_LOCAL_PLANNER_HH
#define AVSCOPE_PLANNING_LOCAL_PLANNER_HH

#include <vector>

#include "geom/pose.hh"
#include "perception/objects.hh"

namespace av::plan {

/** A drivable local trajectory with speed annotations. */
struct Trajectory
{
    std::vector<geom::Vec2> points;
    std::vector<double> speeds; ///< target speed per point (m/s)
    double cost = 0.0;          ///< planner cost of this rollout
    int rolloutIndex = 0;       ///< which lateral candidate won
};

/** Rollout-planner parameters (Autoware-flavoured). */
struct LocalPlannerConfig
{
    std::uint32_t rollouts = 7;     ///< candidate count (odd)
    double maxLateralOffset = 2.4;  ///< outermost candidate (m)
    double horizon = 25.0;          ///< rollout length (m)
    double step = 1.0;              ///< waypoint spacing (m)
    double cruiseSpeed = 8.0;       ///< m/s
    double obstacleCostWeight = 12.0;
    double offsetCostWeight = 0.25;
    /** Costmap value above which a cell blocks (hard stop). */
    double blockThreshold = 0.9;
    double slowThreshold = 0.3;
    /** Comfort lateral acceleration bound: v <= sqrt(a/kappa). */
    double maxLateralAccel = 2.0;
};

/**
 * Plan one local trajectory.
 *
 * @param global  dense global path (world frame)
 * @param ego     current pose
 * @param costmap latest perception costmap (may be empty)
 */
Trajectory planLocal(const std::vector<geom::Vec2> &global,
                     const geom::Pose2 &ego,
                     const perception::Costmap &costmap,
                     const LocalPlannerConfig &config =
                         LocalPlannerConfig());

/** Sample the costmap at a world position (0 outside/empty). */
double costmapAt(const perception::Costmap &costmap,
                 const geom::Vec2 &world);

} // namespace av::plan

#endif // AVSCOPE_PLANNING_LOCAL_PLANNER_HH
