#include "dnn/cost.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace av::dnn {

namespace {

/** Branch-site ids. */
enum Site : std::uint64_t {
    siteSortCompare = 0x61001,
    siteThreshold = 0x61002,
};

/** Comparisons a quicksort makes on n elements (expected). */
double
sortComparisons(double n)
{
    if (n < 2.0)
        return 0.0;
    return 1.39 * n * std::log2(n); // classic quicksort constant
}

/** Number of score elements the sampled trace sort uses. */
constexpr std::size_t sampleSortSize = 1024;

/** Logical probe regions of the host-side DNN cost model. */
constexpr uarch::KernelProfiler::Region regionScores = 1;
constexpr uarch::KernelProfiler::Region regionDecode = 2;
constexpr uarch::KernelProfiler::Region regionResizeSrc = 3;
constexpr uarch::KernelProfiler::Region regionResizeDst = 4;

/**
 * Instrumented in-place quicksort over (score, index) pairs so the
 * branch model sees real partition outcomes and the cache model the
 * real access pattern.
 */
void
tracedQuicksort(std::vector<float> &scores, std::size_t lo,
                std::size_t hi, uarch::KernelProfiler &prof,
                std::uint64_t &comparisons, int depth = 0)
{
    if (lo >= hi || hi - lo < 1)
        return;
    if (depth > 48) { // pathological input guard
        std::sort(scores.begin() + static_cast<long>(lo),
                  scores.begin() + static_cast<long>(hi) + 1,
                  std::greater<float>());
        return;
    }
    const float pivot = scores[(lo + hi) / 2];
    std::size_t i = lo, j = hi;
    while (i <= j) {
        while (true) {
            prof.load(regionScores, i * sizeof(float),
                      sizeof(float));
            const bool advance = scores[i] > pivot;
            prof.branch(siteSortCompare, advance);
            ++comparisons;
            if (!advance)
                break;
            ++i;
        }
        while (true) {
            prof.load(regionScores, j * sizeof(float),
                      sizeof(float));
            const bool advance = scores[j] < pivot;
            prof.branch(siteSortCompare, advance);
            ++comparisons;
            if (!advance)
                break;
            if (j == 0)
                break;
            --j;
        }
        if (i <= j) {
            std::swap(scores[i], scores[j]);
            prof.store(regionScores, i * sizeof(float),
                       sizeof(float));
            prof.store(regionScores, j * sizeof(float),
                       sizeof(float));
            ++i;
            if (j == 0)
                break;
            --j;
        }
    }
    if (j > lo)
        tracedQuicksort(scores, lo, j, prof, comparisons, depth + 1);
    if (i < hi)
        tracedQuicksort(scores, i, hi, prof, comparisons, depth + 1);
}

} // namespace

std::vector<hw::GpuKernel>
networkKernels(const NetworkSpec &net, const GpuCostParams &params)
{
    std::vector<hw::GpuKernel> kernels;
    kernels.reserve(net.layers.size());
    const double derate =
        params.efficiency > 0.0 ? 1.0 / params.efficiency : 1.0;
    for (const LayerSpec &layer : net.layers) {
        hw::GpuKernel k;
        k.flops = layer.flops() * derate;
        // Device traffic: read input + weights, write output.
        k.bytes = layer.inputBytes() + layer.weightBytes() +
                  layer.outputBytes();
        k.powerWeight = params.powerWeight;
        kernels.push_back(k);
    }
    return kernels;
}

double
networkH2dBytes(const NetworkSpec &net)
{
    return net.inputBytes();
}

double
networkD2hBytes(const NetworkSpec &net)
{
    // Raw candidate tensor: 4 box coords + per-class scores, fp32.
    return 4.0 * static_cast<double>(net.numCandidateBoxes) *
           (4.0 + net.numClasses);
}

uarch::OpCounts
postprocessFrame(const NetworkSpec &net, util::Rng &rng,
                 uarch::KernelProfiler prof)
{
    const double cands = net.numCandidateBoxes;
    const double classes = net.numClasses;

    // ---- analytic accounting -------------------------------------
    uarch::OpCounts ops;

    // Confidence decode: touch every (candidate, class) score once
    // (lightweight threshold scan, ~6 instructions per element).
    const double decode_elems = cands * classes;
    ops.loads += static_cast<std::uint64_t>(2 * decode_elems);
    ops.branches += static_cast<std::uint64_t>(1 * decode_elems);
    ops.fpAlu += static_cast<std::uint64_t>(2 * decode_elems);
    ops.intAlu += static_cast<std::uint64_t>(1 * decode_elems);

    // Per-class sort of all candidates by score (the SSD
    // detection-output layer behaviour the paper traced 71% of
    // SSD512's CPU time to). YOLO instead thresholds objectness
    // first and sorts only survivors.
    double comparisons = 0.0;
    if (net.name.rfind("YOLO", 0) == 0) {
        // YOLO thresholds objectness first and NMS-sorts the few
        // hundred survivors once.
        comparisons = sortComparisons(std::min(cands, 300.0));
    } else {
        comparisons = classes * sortComparisons(cands);
    }
    ops.loads += static_cast<std::uint64_t>(5 * comparisons);
    ops.stores += static_cast<std::uint64_t>(2 * comparisons);
    ops.branches += static_cast<std::uint64_t>(3 * comparisons);
    ops.intAlu += static_cast<std::uint64_t>(4 * comparisons);
    ops.other += static_cast<std::uint64_t>(2 * comparisons);

    prof.addOps(ops);

    // ---- sampled real traces -------------------------------------
    // The trace must be a *proportional* sample of the frame's
    // branch population so the resulting misprediction rate is
    // representative: per data-dependent sort comparison there are
    // ~2 predictable control branches, plus the decode scan's
    // threshold branch (overwhelmingly not-taken).
    if (prof.tracing()) {
        // Real quicksort on a score sample: near-random partition
        // outcomes drive the branch predictor exactly like the real
        // output layer does.
        const std::size_t sample_n = std::min<std::size_t>(
            sampleSortSize,
            std::max<std::size_t>(
                64, static_cast<std::size_t>(comparisons /
                                             (1.39 * 12.0))));
        std::vector<float> scores(sample_n);
        for (float &s : scores)
            s = static_cast<float>(rng.exponential(8.0));
        std::uint64_t traced_cmp = 0;
        tracedQuicksort(scores, 0, scores.size() - 1, prof,
                        traced_cmp);

        const double sample_ratio =
            comparisons > 0.0
                ? static_cast<double>(traced_cmp) / comparisons
                : 0.0;
        prof.bulkBranches(static_cast<std::uint64_t>(
            sample_ratio *
            (2.0 * comparisons + 1.0 * decode_elems)));

        // Streaming decode reads over the candidate tensor.
        const std::size_t window =
            std::min<std::size_t>(static_cast<std::size_t>(cands),
                                  16384);
        for (std::size_t i = 0; i < window; ++i)
            prof.load(regionDecode, i * sizeof(float),
                      sizeof(float));
    }
    return ops;
}

uarch::OpCounts
preprocessFrame(const NetworkSpec &net, std::uint32_t cam_w,
                std::uint32_t cam_h, uarch::KernelProfiler prof)
{
    const double out_px =
        3.0 * static_cast<double>(net.inputW) * net.inputH;
    const double in_px = 3.0 * static_cast<double>(cam_w) * cam_h;

    uarch::OpCounts ops;
    // Bilinear resize + normalize, per output element.
    ops.loads += static_cast<std::uint64_t>(4 * out_px);
    ops.stores += static_cast<std::uint64_t>(1 * out_px);
    ops.fpAlu += static_cast<std::uint64_t>(7 * out_px);
    ops.intAlu += static_cast<std::uint64_t>(3 * out_px);
    ops.branches += static_cast<std::uint64_t>(1 * out_px);
    // One pass over the source image (copy out of the ROS message).
    ops.loads += static_cast<std::uint64_t>(in_px / 4); // SIMD-ish
    ops.simd += static_cast<std::uint64_t>(in_px / 8);
    prof.addOps(ops);

    if (prof.tracing()) {
        // Streaming source reads + destination writes: genuine
        // low-locality traffic for the cache model. The bulk branch
        // sample is scaled to the same fraction of the frame the
        // traced accesses represent, keeping rates representative.
        // Bilinear resize reads a sliding 2-row window of the
        // source (L1-resident), writes the destination streaming.
        const std::size_t src_window = 2048; // 8 KiB, resident
        const std::size_t window = 16384;
        for (std::size_t i = 0; i < window; ++i) {
            prof.load(regionResizeSrc,
                      ((i * 7) % src_window) * sizeof(float),
                      sizeof(float));
            prof.store(regionResizeDst, i * sizeof(float),
                       sizeof(float));
            if ((i & 7u) == 0)
                prof.hotLoads(16); // coefficient math
        }
        const double access_ratio =
            2.0 * window /
            static_cast<double>(ops.loads + ops.stores);
        prof.bulkBranches(static_cast<std::uint64_t>(
            access_ratio * static_cast<double>(ops.branches)));
    }
    return ops;
}

} // namespace av::dnn
