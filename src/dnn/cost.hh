/**
 * @file
 * Conversion from network specs to GPU work, plus the instrumented
 * host-side post-processing (box decode + per-class sort + NMS) that
 * dominates SSD's CPU time and branch mispredictions (paper §IV-C:
 * 71% of SSD512 CPU time is the output-layer sort, 9.78% branch
 * misprediction).
 */

#ifndef AVSCOPE_DNN_COST_HH
#define AVSCOPE_DNN_COST_HH

#include <cstdint>
#include <vector>

#include "hw/gpu.hh"
#include "dnn/network.hh"
#include "uarch/opcounts.hh"
#include "uarch/profiler.hh"
#include "util/random.hh"

namespace av::dnn {

/** Per-framework GPU execution characteristics. */
struct GpuCostParams
{
    /**
     * Achieved fraction of the device's peak FLOPS. Calibrated per
     * framework: cuDNN-based SSD sustains ~0.4-0.5 of peak, darknet
     * YOLO ~0.2 (documented in EXPERIMENTS.md).
     */
    double efficiency = 0.45;
    /** Occupancy/intensity weight for the GPU power model. */
    double powerWeight = 1.0;
};

/**
 * One kernel per conv/pool/fc layer, with efficiency folded into the
 * FLOP count so hw::GpuModel's roofline yields the framework's real
 * sustained throughput.
 */
std::vector<hw::GpuKernel> networkKernels(const NetworkSpec &net,
                                          const GpuCostParams &params);

/** Host-to-device bytes per inference (input tensor). */
double networkH2dBytes(const NetworkSpec &net);

/** Device-to-host bytes per inference (raw candidate tensor). */
double networkD2hBytes(const NetworkSpec &net);

/**
 * Simulate the host-side output-layer work for one frame:
 * confidence decode over all candidates and a per-class
 * sort-by-score. A sampled real quicksort runs on synthetic scores
 * so the branch predictor model sees genuine data-dependent compare
 * outcomes; total dynamic instructions are accounted analytically.
 *
 * @param net     the network (candidate/class counts)
 * @param rng     per-frame score generator (deterministic)
 * @param prof    instrumentation sink
 * @return dynamic instruction estimate for this frame's postprocess
 */
uarch::OpCounts postprocessFrame(const NetworkSpec &net,
                                 util::Rng &rng,
                                 uarch::KernelProfiler prof);

/**
 * Host-side pre-processing cost (image resize + normalize from the
 * camera resolution to the network input): returned as op counts,
 * with sampled streaming loads fed to @p prof.
 *
 * @param cam_w, cam_h camera resolution
 */
uarch::OpCounts preprocessFrame(const NetworkSpec &net,
                                std::uint32_t cam_w,
                                std::uint32_t cam_h,
                                uarch::KernelProfiler prof);

} // namespace av::dnn

#endif // AVSCOPE_DNN_COST_HH
