#include "dnn/network.hh"

#include <cmath>

#include "util/logging.hh"

namespace av::dnn {

double
LayerSpec::flops() const
{
    const double out_elems =
        static_cast<double>(outC) * outH * outW;
    switch (kind) {
      case LayerKind::Conv:
        // 2 FLOPs per MAC over the receptive field.
        return 2.0 * out_elems * inC * kernel * kernel;
      case LayerKind::FullyConnected:
        return 2.0 * static_cast<double>(outC) * inC;
      case LayerKind::MaxPool:
        return out_elems * kernel * kernel;
      case LayerKind::Upsample:
        return out_elems;
      case LayerKind::Shortcut:
        return out_elems;
      case LayerKind::Concat:
        return 0.0;
    }
    return 0.0;
}

double
LayerSpec::weightBytes() const
{
    switch (kind) {
      case LayerKind::Conv:
        return 4.0 * (static_cast<double>(outC) * inC * kernel *
                          kernel +
                      outC);
      case LayerKind::FullyConnected:
        return 4.0 * (static_cast<double>(outC) * inC + outC);
      default:
        return 0.0;
    }
}

double
LayerSpec::outputBytes() const
{
    return 4.0 * static_cast<double>(outC) * outH * outW;
}

double
LayerSpec::inputBytes() const
{
    return 4.0 * static_cast<double>(inC) * inH * inW;
}

double
NetworkSpec::totalFlops() const
{
    double acc = 0.0;
    for (const LayerSpec &l : layers)
        acc += l.flops();
    return acc;
}

double
NetworkSpec::totalWeightBytes() const
{
    double acc = 0.0;
    for (const LayerSpec &l : layers)
        acc += l.weightBytes();
    return acc;
}

double
NetworkSpec::totalActivationBytes() const
{
    double acc = 0.0;
    for (const LayerSpec &l : layers)
        acc += l.outputBytes();
    return acc;
}

std::size_t
NetworkSpec::convLayers() const
{
    std::size_t n = 0;
    for (const LayerSpec &l : layers)
        n += l.kind == LayerKind::Conv;
    return n;
}

namespace {

/** Incremental network builder tracking the live tensor shape. */
class Builder
{
  public:
    Builder(NetworkSpec &net, std::uint32_t c, std::uint32_t h,
            std::uint32_t w)
        : net_(net), c_(c), h_(h), w_(w)
    {}

    Builder &
    conv(const std::string &name, std::uint32_t out_c,
         std::uint32_t kernel, std::uint32_t stride = 1,
         bool same_pad = true)
    {
        LayerSpec l;
        l.name = name;
        l.kind = LayerKind::Conv;
        l.inC = c_;
        l.inH = h_;
        l.inW = w_;
        l.outC = out_c;
        if (same_pad) {
            l.outH = (h_ + stride - 1) / stride;
            l.outW = (w_ + stride - 1) / stride;
        } else {
            // valid padding
            AV_ASSERT(h_ >= kernel && w_ >= kernel,
                      "valid conv ", name, " kernel larger than input");
            l.outH = (h_ - kernel) / stride + 1;
            l.outW = (w_ - kernel) / stride + 1;
        }
        l.kernel = kernel;
        l.stride = stride;
        push(l);
        return *this;
    }

    Builder &
    pool(const std::string &name, std::uint32_t kernel,
         std::uint32_t stride)
    {
        LayerSpec l;
        l.name = name;
        l.kind = LayerKind::MaxPool;
        l.inC = c_;
        l.inH = h_;
        l.inW = w_;
        l.outC = c_;
        l.outH = (h_ + stride - 1) / stride;
        l.outW = (w_ + stride - 1) / stride;
        l.kernel = kernel;
        l.stride = stride;
        push(l);
        return *this;
    }

    Builder &
    upsample(const std::string &name)
    {
        LayerSpec l;
        l.name = name;
        l.kind = LayerKind::Upsample;
        l.inC = c_;
        l.inH = h_;
        l.inW = w_;
        l.outC = c_;
        l.outH = h_ * 2;
        l.outW = w_ * 2;
        push(l);
        return *this;
    }

    Builder &
    shortcut(const std::string &name)
    {
        LayerSpec l;
        l.name = name;
        l.kind = LayerKind::Shortcut;
        l.inC = c_;
        l.inH = h_;
        l.inW = w_;
        l.outC = c_;
        l.outH = h_;
        l.outW = w_;
        push(l);
        return *this;
    }

    /** Concatenate extra channels onto the live tensor (route). */
    Builder &
    concat(const std::string &name, std::uint32_t extra_c)
    {
        LayerSpec l;
        l.name = name;
        l.kind = LayerKind::Concat;
        l.inC = c_;
        l.inH = h_;
        l.inW = w_;
        l.outC = c_ + extra_c;
        l.outH = h_;
        l.outW = w_;
        push(l);
        return *this;
    }

    /**
     * Add a detached detection-head conv reading from an arbitrary
     * earlier feature map; the live shape is unaffected.
     */
    Builder &
    head(const std::string &name, std::uint32_t in_c,
         std::uint32_t hw, std::uint32_t out_c, std::uint32_t kernel)
    {
        LayerSpec l;
        l.name = name;
        l.kind = LayerKind::Conv;
        l.inC = in_c;
        l.inH = hw;
        l.inW = hw;
        l.outC = out_c;
        l.outH = hw;
        l.outW = hw;
        l.kernel = kernel;
        l.stride = 1;
        net_.layers.push_back(l);
        return *this;
    }

    /** Reset the live shape (jump to a saved route point). */
    Builder &
    at(std::uint32_t c, std::uint32_t h, std::uint32_t w)
    {
        c_ = c;
        h_ = h;
        w_ = w;
        return *this;
    }

    std::uint32_t channels() const { return c_; }
    std::uint32_t height() const { return h_; }

  private:
    void
    push(const LayerSpec &l)
    {
        net_.layers.push_back(l);
        c_ = l.outC;
        h_ = l.outH;
        w_ = l.outW;
    }

    NetworkSpec &net_;
    std::uint32_t c_, h_, w_;
};

/** VGG-16 base shared by both SSD variants (through fc7). */
void
vggBase(Builder &b)
{
    b.conv("conv1_1", 64, 3).conv("conv1_2", 64, 3)
        .pool("pool1", 2, 2)
        .conv("conv2_1", 128, 3).conv("conv2_2", 128, 3)
        .pool("pool2", 2, 2)
        .conv("conv3_1", 256, 3).conv("conv3_2", 256, 3)
        .conv("conv3_3", 256, 3)
        .pool("pool3", 2, 2)
        .conv("conv4_1", 512, 3).conv("conv4_2", 512, 3)
        .conv("conv4_3", 512, 3)
        .pool("pool4", 2, 2)
        .conv("conv5_1", 512, 3).conv("conv5_2", 512, 3)
        .conv("conv5_3", 512, 3)
        .pool("pool5", 3, 1)
        .conv("fc6", 1024, 3)   // dilated conv, same MAC count
        .conv("fc7", 1024, 1);
}

/** SSD multibox heads: (feature size, channels, boxes per cell). */
struct SsdSource
{
    std::uint32_t size;
    std::uint32_t channels;
    std::uint32_t boxes;
};

void
ssdHeads(Builder &b, const std::vector<SsdSource> &sources,
         std::uint32_t num_classes, NetworkSpec &net)
{
    std::uint32_t candidates = 0;
    for (const SsdSource &src : sources) {
        b.head("loc_" + std::to_string(src.size), src.channels,
               src.size, src.boxes * 4, 3);
        b.head("conf_" + std::to_string(src.size), src.channels,
               src.size, src.boxes * num_classes, 3);
        candidates += src.size * src.size * src.boxes;
    }
    net.numCandidateBoxes = candidates;
}

} // namespace

NetworkSpec
buildSsd300()
{
    NetworkSpec net;
    net.name = "SSD300";
    net.inputW = net.inputH = 300;
    net.numClasses = 21; // VOC + background, per the Autoware models
    Builder b(net, 3, 300, 300);
    vggBase(b); // ends at 19x19x1024 (300->150->75->38->19)
    b.conv("conv8_1", 256, 1).conv("conv8_2", 512, 3, 2)   // 10
        .conv("conv9_1", 128, 1).conv("conv9_2", 256, 3, 2) // 5
        .conv("conv10_1", 128, 1)
        .conv("conv10_2", 256, 3, 1, false)                 // 3
        .conv("conv11_1", 128, 1)
        .conv("conv11_2", 256, 3, 1, false);                // 1
    ssdHeads(b,
             {{38, 512, 4},
              {19, 1024, 6},
              {10, 512, 6},
              {5, 256, 6},
              {3, 256, 4},
              {1, 256, 4}},
             net.numClasses, net);
    AV_ASSERT(net.numCandidateBoxes == 8732,
              "SSD300 prior-box count drifted: ",
              net.numCandidateBoxes);
    return net;
}

NetworkSpec
buildSsd512()
{
    NetworkSpec net;
    net.name = "SSD512";
    net.inputW = net.inputH = 512;
    net.numClasses = 21;
    Builder b(net, 3, 512, 512);
    vggBase(b); // 512->256->128->64->32
    b.conv("conv8_1", 256, 1).conv("conv8_2", 512, 3, 2)    // 16
        .conv("conv9_1", 128, 1).conv("conv9_2", 256, 3, 2)  // 8
        .conv("conv10_1", 128, 1).conv("conv10_2", 256, 3, 2)// 4
        .conv("conv11_1", 128, 1).conv("conv11_2", 256, 3, 2)// 2
        .conv("conv12_1", 128, 1)
        .conv("conv12_2", 256, 3, 2);                        // 1
    ssdHeads(b,
             {{64, 512, 4},
              {32, 1024, 6},
              {16, 512, 6},
              {8, 256, 6},
              {4, 256, 6},
              {2, 256, 4},
              {1, 256, 4}},
             net.numClasses, net);
    AV_ASSERT(net.numCandidateBoxes == 24564,
              "SSD512 prior-box count drifted: ",
              net.numCandidateBoxes);
    return net;
}

namespace {

/** One Darknet-53 residual block: 1x1 squeeze + 3x3 expand + add. */
void
residual(Builder &b, const std::string &prefix,
         std::uint32_t channels)
{
    b.conv(prefix + "_1x1", channels / 2, 1)
        .conv(prefix + "_3x3", channels, 3)
        .shortcut(prefix + "_add");
}

} // namespace

NetworkSpec
buildYolov3_416()
{
    NetworkSpec net;
    net.name = "YOLOv3-416";
    net.inputW = net.inputH = 416;
    net.numClasses = 80; // COCO, per the Autoware YOLOv3 weights
    Builder b(net, 3, 416, 416);

    b.conv("conv0", 32, 3);
    b.conv("down1", 64, 3, 2); // 208
    residual(b, "res1_0", 64);
    b.conv("down2", 128, 3, 2); // 104
    for (int i = 0; i < 2; ++i)
        residual(b, "res2_" + std::to_string(i), 128);
    b.conv("down3", 256, 3, 2); // 52
    for (int i = 0; i < 8; ++i)
        residual(b, "res3_" + std::to_string(i), 256);
    // route point A: 52x52x256
    b.conv("down4", 512, 3, 2); // 26
    for (int i = 0; i < 8; ++i)
        residual(b, "res4_" + std::to_string(i), 512);
    // route point B: 26x26x512
    b.conv("down5", 1024, 3, 2); // 13
    for (int i = 0; i < 4; ++i)
        residual(b, "res5_" + std::to_string(i), 1024);

    const std::uint32_t det_c = 3 * (4 + 1 + net.numClasses); // 255

    // Head 1 at 13x13.
    b.conv("h1_conv0", 512, 1).conv("h1_conv1", 1024, 3)
        .conv("h1_conv2", 512, 1).conv("h1_conv3", 1024, 3)
        .conv("h1_conv4", 512, 1);
    b.conv("h1_conv5", 1024, 3).conv("h1_detect", det_c, 1);

    // Route back to h1_conv4 output (512 @ 13), squeeze + upsample,
    // concat with route point B.
    b.at(512, 13, 13);
    b.conv("h2_squeeze", 256, 1).upsample("h2_up"); // 26x26x256
    b.concat("h2_route", 512);                      // + 26x26x512
    b.conv("h2_conv0", 256, 1).conv("h2_conv1", 512, 3)
        .conv("h2_conv2", 256, 1).conv("h2_conv3", 512, 3)
        .conv("h2_conv4", 256, 1);
    b.conv("h2_conv5", 512, 3).conv("h2_detect", det_c, 1);

    // Route back to h2_conv4 (256 @ 26), squeeze + upsample, concat
    // with route point A.
    b.at(256, 26, 26);
    b.conv("h3_squeeze", 128, 1).upsample("h3_up"); // 52x52x128
    b.concat("h3_route", 256);                      // + 52x52x256
    b.conv("h3_conv0", 128, 1).conv("h3_conv1", 256, 3)
        .conv("h3_conv2", 128, 1).conv("h3_conv3", 256, 3)
        .conv("h3_conv4", 128, 1);
    b.conv("h3_conv5", 256, 3).conv("h3_detect", det_c, 1);

    net.numCandidateBoxes = 3 * (13 * 13 + 26 * 26 + 52 * 52);
    AV_ASSERT(net.numCandidateBoxes == 10647,
              "YOLOv3 candidate count drifted");
    return net;
}

} // namespace av::dnn
