/**
 * @file
 * DNN architecture descriptions for the vision detectors.
 *
 * The paper evaluates three image detectors: SSD512, SSD300 (VGG-16
 * backbone, Liu et al.) and YOLOv3-416 (Darknet-53 backbone). We
 * cannot run CUDA inference here, so the detectors' *cost structure*
 * is reproduced from layer-accurate specs: every conv/pool/fc layer
 * with its true dimensions, from which FLOPs, weight bytes and
 * activation traffic follow. The hw::GpuModel turns those into
 * kernel timings; the CPU pre/post-processing (including SSD's
 * output-layer sort that dominates its branch mispredictions, paper
 * §IV-C) is modelled in perception/vision_detector.
 */

#ifndef AVSCOPE_DNN_NETWORK_HH
#define AVSCOPE_DNN_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace av::dnn {

/** Layer kinds we account for. */
enum class LayerKind {
    Conv,     ///< 2-D convolution (+ bias + activation)
    MaxPool,
    FullyConnected,
    Upsample, ///< nearest-neighbour 2x (YOLOv3 FPN)
    Shortcut, ///< residual add
    Concat,   ///< route/concatenate
};

/** One layer with its true dimensions. */
struct LayerSpec
{
    std::string name;
    LayerKind kind = LayerKind::Conv;
    std::uint32_t inC = 0, inH = 0, inW = 0;
    std::uint32_t outC = 0, outH = 0, outW = 0;
    std::uint32_t kernel = 0; ///< square kernel size (conv/pool)
    std::uint32_t stride = 1;

    /** Multiply-accumulates counted as 2 FLOPs each. */
    double flops() const;

    /** Parameter bytes (fp32). */
    double weightBytes() const;

    /** Output activation bytes (fp32). */
    double outputBytes() const;

    /** Input activation bytes (fp32). */
    double inputBytes() const;
};

/** A whole network. */
struct NetworkSpec
{
    std::string name;
    std::uint32_t inputW = 0;
    std::uint32_t inputH = 0;
    std::uint32_t numClasses = 0;
    /** Raw candidate boxes the head emits before NMS. */
    std::uint32_t numCandidateBoxes = 0;
    std::vector<LayerSpec> layers;

    double totalFlops() const;
    double totalWeightBytes() const;
    double totalActivationBytes() const;
    std::size_t convLayers() const;

    /** Input tensor bytes (fp32 CHW). */
    double inputBytes() const
    {
        return 3.0 * inputW * inputH * 4.0;
    }
};

/** SSD with the 300x300 VGG-16 configuration. */
NetworkSpec buildSsd300();

/** SSD with the 512x512 VGG-16 configuration. */
NetworkSpec buildSsd512();

/** YOLOv3 at 416x416 (Darknet-53 + FPN heads). */
NetworkSpec buildYolov3_416();

} // namespace av::dnn

#endif // AVSCOPE_DNN_NETWORK_HH
