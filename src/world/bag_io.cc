#include "world/bag_io.hh"

#include <cstring>
#include <fstream>

#include "util/logging.hh"
#include "world/recorder.hh"

namespace av::world {

namespace {

constexpr std::uint32_t magic = 0x47425641; // "AVBG"
constexpr std::uint32_t version = 1;

/** Channel tags. */
enum Tag : std::uint32_t {
    tagPoints = 1,
    tagImages = 2,
    tagGnss = 3,
    tagImu = 4,
};

template <typename T>
void
writeRaw(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
readRaw(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(is);
}

void
writeHeader(std::ostream &os, const ros::Header &h,
            std::uint64_t bytes)
{
    writeRaw<std::uint64_t>(os, h.seq);
    writeRaw<std::uint64_t>(os, h.stamp);
    writeRaw<std::uint64_t>(os, h.origins.lidar);
    writeRaw<std::uint64_t>(os, h.origins.camera);
    writeRaw<std::uint64_t>(os, bytes);
}

bool
readHeader(std::istream &is, ros::Header &h, std::uint64_t &bytes)
{
    return readRaw(is, h.seq) && readRaw(is, h.stamp) &&
           readRaw(is, h.origins.lidar) &&
           readRaw(is, h.origins.camera) && readRaw(is, bytes);
}

/** Bytes between the read cursor and end-of-file. */
std::uint64_t
remainingBytes(std::istream &is)
{
    const std::istream::pos_type here = is.tellg();
    if (here == std::istream::pos_type(-1))
        return 0;
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(here);
    if (end == std::istream::pos_type(-1) || end < here)
        return 0;
    return static_cast<std::uint64_t>(end - here);
}

/**
 * Guard a record count read from the file against the bytes that
 * actually remain: a truncated or bit-flipped count field must fail
 * the load, not drive a multi-gigabyte resize().
 */
bool
plausibleCount(std::istream &is, std::uint64_t count,
               std::uint64_t min_record_bytes)
{
    return count <= remainingBytes(is) / min_record_bytes;
}

void
writePointCloud(std::ostream &os,
                const ros::Stamped<pc::PointCloud> &msg)
{
    writeHeader(os, msg.header, msg.bytes);
    writeRaw<std::uint64_t>(os, msg.data.stampNs);
    writeRaw<std::uint32_t>(
        os, static_cast<std::uint32_t>(msg.data.size()));
    for (const pc::Point &p : msg.data.points) {
        writeRaw(os, p.x);
        writeRaw(os, p.y);
        writeRaw(os, p.z);
        writeRaw(os, p.intensity);
        writeRaw(os, p.ring);
    }
}

bool
readPointCloud(std::istream &is, ros::Stamped<pc::PointCloud> &msg)
{
    std::uint64_t bytes = 0;
    if (!readHeader(is, msg.header, bytes))
        return false;
    msg.bytes = static_cast<std::size_t>(bytes);
    std::uint32_t count = 0;
    if (!readRaw(is, msg.data.stampNs) || !readRaw(is, count))
        return false;
    constexpr std::uint64_t point_bytes =
        4 * sizeof(float) + sizeof(std::uint16_t);
    if (!plausibleCount(is, count, point_bytes))
        return false;
    msg.data.points.resize(count);
    for (pc::Point &p : msg.data.points) {
        if (!(readRaw(is, p.x) && readRaw(is, p.y) &&
              readRaw(is, p.z) && readRaw(is, p.intensity) &&
              readRaw(is, p.ring)))
            return false;
    }
    return true;
}

void
writeFrame(std::ostream &os, const ros::Stamped<CameraFrame> &msg)
{
    writeHeader(os, msg.header, msg.bytes);
    writeRaw(os, msg.data.width);
    writeRaw(os, msg.data.height);
    writeRaw<std::uint32_t>(
        os, static_cast<std::uint32_t>(msg.data.truth.size()));
    for (const VisibleObject &vo : msg.data.truth) {
        writeRaw(os, vo.truthId);
        writeRaw<std::uint8_t>(
            os, static_cast<std::uint8_t>(vo.cls));
        writeRaw(os, vo.range);
        writeRaw(os, vo.bearing);
        writeRaw(os, vo.imageHeightPx);
        writeRaw(os, vo.worldPos.x);
        writeRaw(os, vo.worldPos.y);
        writeRaw(os, vo.worldVelocity.x);
        writeRaw(os, vo.worldVelocity.y);
        writeRaw(os, vo.occlusion);
    }
}

bool
readFrame(std::istream &is, ros::Stamped<CameraFrame> &msg)
{
    std::uint64_t bytes = 0;
    if (!readHeader(is, msg.header, bytes))
        return false;
    msg.bytes = static_cast<std::size_t>(bytes);
    std::uint32_t count = 0;
    if (!(readRaw(is, msg.data.width) &&
          readRaw(is, msg.data.height) && readRaw(is, count)))
        return false;
    constexpr std::uint64_t object_bytes =
        sizeof(std::uint32_t) + sizeof(std::uint8_t) +
        8 * sizeof(double);
    if (!plausibleCount(is, count, object_bytes))
        return false;
    msg.data.truth.resize(count);
    for (VisibleObject &vo : msg.data.truth) {
        std::uint8_t cls = 0;
        if (!(readRaw(is, vo.truthId) && readRaw(is, cls) &&
              readRaw(is, vo.range) && readRaw(is, vo.bearing) &&
              readRaw(is, vo.imageHeightPx) &&
              readRaw(is, vo.worldPos.x) &&
              readRaw(is, vo.worldPos.y) &&
              readRaw(is, vo.worldVelocity.x) &&
              readRaw(is, vo.worldVelocity.y) &&
              readRaw(is, vo.occlusion)))
            return false;
        // Enum values come off the wire: reject anything outside the
        // ActorClass range rather than storing a poisoned enum.
        if (cls > static_cast<std::uint8_t>(ActorClass::Cyclist))
            return false;
        vo.cls = static_cast<ActorClass>(cls);
    }
    return true;
}

void
writeGnss(std::ostream &os, const ros::Stamped<GnssFix> &msg)
{
    writeHeader(os, msg.header, msg.bytes);
    writeRaw(os, msg.data.position.x);
    writeRaw(os, msg.data.position.y);
    writeRaw(os, msg.data.position.z);
    writeRaw(os, msg.data.horizontalErr);
}

bool
readGnss(std::istream &is, ros::Stamped<GnssFix> &msg)
{
    std::uint64_t bytes = 0;
    if (!readHeader(is, msg.header, bytes))
        return false;
    msg.bytes = static_cast<std::size_t>(bytes);
    return readRaw(is, msg.data.position.x) &&
           readRaw(is, msg.data.position.y) &&
           readRaw(is, msg.data.position.z) &&
           readRaw(is, msg.data.horizontalErr);
}

void
writeImu(std::ostream &os, const ros::Stamped<ImuSample> &msg)
{
    writeHeader(os, msg.header, msg.bytes);
    writeRaw(os, msg.data.yawRate);
    writeRaw(os, msg.data.accelX);
    writeRaw(os, msg.data.speed);
}

bool
readImu(std::istream &is, ros::Stamped<ImuSample> &msg)
{
    std::uint64_t bytes = 0;
    if (!readHeader(is, msg.header, bytes))
        return false;
    msg.bytes = static_cast<std::size_t>(bytes);
    return readRaw(is, msg.data.yawRate) &&
           readRaw(is, msg.data.accelX) &&
           readRaw(is, msg.data.speed);
}

/** Write one channel block if the bag holds that channel. */
template <typename T, typename WriteFn>
void
writeChannel(std::ostream &os, const ros::Bag &bag,
             const char *topic, Tag tag, WriteFn write_fn)
{
    const ros::BagChannel<T> *channel = nullptr;
    for (const ros::BagChannelBase *base : bag.channels()) {
        if (base->name() == topic) {
            channel = dynamic_cast<const ros::BagChannel<T> *>(base);
            break;
        }
    }
    if (!channel || channel->count() == 0)
        return;
    writeRaw<std::uint32_t>(os, tag);
    writeRaw<std::uint64_t>(os, channel->count());
    for (const auto &msg : channel->messages())
        write_fn(os, msg);
}

} // namespace

bool
saveSensorBag(const ros::Bag &bag, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return false;
    writeRaw(os, magic);
    writeRaw(os, version);
    writeChannel<pc::PointCloud>(os, bag, topics::pointsRaw,
                                 tagPoints, writePointCloud);
    writeChannel<CameraFrame>(os, bag, topics::imageRaw, tagImages,
                              writeFrame);
    writeChannel<GnssFix>(os, bag, topics::gnss, tagGnss, writeGnss);
    writeChannel<ImuSample>(os, bag, topics::imu, tagImu, writeImu);
    return static_cast<bool>(os);
}

bool
loadSensorBag(ros::Bag &bag, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        util::warn("sensor bag '", path, "': cannot open for read");
        return false;
    }
    std::uint32_t file_magic = 0, file_version = 0;
    if (!readRaw(is, file_magic) || file_magic != magic) {
        util::warn("sensor bag '", path,
                   "': bad magic (not an AVBG file)");
        return false;
    }
    if (!readRaw(is, file_version) || file_version != version) {
        util::warn("sensor bag '", path,
                   "': unsupported format version ", file_version,
                   " (expected ", version, ")");
        return false;
    }

    std::uint32_t tag = 0;
    while (readRaw(is, tag)) {
        std::uint64_t count = 0;
        if (!readRaw(is, count)) {
            util::warn("sensor bag '", path,
                       "': truncated channel header (tag ", tag,
                       ")");
            return false;
        }
        for (std::uint64_t i = 0; i < count; ++i) {
            bool ok = false;
            switch (tag) {
              case tagPoints: {
                ros::Stamped<pc::PointCloud> msg;
                ok = readPointCloud(is, msg);
                if (ok)
                    bag.channel<pc::PointCloud>(topics::pointsRaw)
                        .add(std::move(msg));
                break;
              }
              case tagImages: {
                ros::Stamped<CameraFrame> msg;
                ok = readFrame(is, msg);
                if (ok)
                    bag.channel<CameraFrame>(topics::imageRaw)
                        .add(std::move(msg));
                break;
              }
              case tagGnss: {
                ros::Stamped<GnssFix> msg;
                ok = readGnss(is, msg);
                if (ok)
                    bag.channel<GnssFix>(topics::gnss)
                        .add(std::move(msg));
                break;
              }
              case tagImu: {
                ros::Stamped<ImuSample> msg;
                ok = readImu(is, msg);
                if (ok)
                    bag.channel<ImuSample>(topics::imu)
                        .add(std::move(msg));
                break;
              }
              default:
                util::warn("sensor bag '", path,
                           "': unknown channel tag ", tag);
                return false;
            }
            if (!ok) {
                util::warn("sensor bag '", path,
                           "': truncated or corrupt record ", i,
                           " of ", count, " in channel tag ", tag);
                return false;
            }
        }
    }
    return true;
}

} // namespace av::world
