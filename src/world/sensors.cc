#include "world/sensors.hh"

#include <algorithm>
#include <cmath>

#include "util/random.hh"

namespace av::world {

LidarModel::LidarModel(const LidarConfig &config, std::uint64_t seed)
    : config_(config), seed_(seed)
{
}

pc::PointCloud
LidarModel::scan(const Scenario &scenario, sim::Tick t) const
{
    return scan(scenario, t, scenario.egoPoseAt(t));
}

pc::PointCloud
LidarModel::scan(const Scenario &scenario, sim::Tick t,
                 const geom::Pose2 &ego) const
{
    // Deterministic noise stream per scan.
    util::Rng rng(seed_ ^ (static_cast<std::uint64_t>(t) *
                           0x9e3779b97f4a7c15ull));

    const geom::Vec3 origin{ego.p.x, ego.p.y, config_.mountHeight};
    const std::vector<ActorState> actors = scenario.actorsAt(t);
    const auto &obstacles = scenario.obstacles();

    // Pre-prune geometry to the range disc.
    const double reach = config_.maxRange + 5.0;
    std::vector<const geom::OrientedBox *> candidates;
    std::vector<geom::Aabb> candidateAabbs;
    candidates.reserve(obstacles.size() + actors.size());
    for (const StaticObstacle &ob : obstacles) {
        if ((ob.box.pose.p - ego.p).norm() <
            reach + std::max(ob.box.length, ob.box.width)) {
            candidates.push_back(&ob.box);
            candidateAabbs.push_back(ob.box.aabb());
        }
    }
    for (const ActorState &actor : actors) {
        if ((actor.box.pose.p - ego.p).norm() < reach + 6.0) {
            candidates.push_back(&actor.box);
            candidateAabbs.push_back(actor.box.aabb());
        }
    }

    pc::PointCloud cloud;
    cloud.stampNs = t;
    cloud.reserve(static_cast<std::size_t>(config_.beams) *
                  config_.azimuthSteps / 2);

    const double fov = config_.verticalFovDeg * M_PI / 180.0;
    for (std::uint32_t az = 0; az < config_.azimuthSteps; ++az) {
        const double azimuth =
            2.0 * M_PI * az / config_.azimuthSteps;
        const double world_yaw = ego.yaw + azimuth;
        const double cy = std::cos(world_yaw);
        const double sy = std::sin(world_yaw);
        for (std::uint32_t beam = 0; beam < config_.beams; ++beam) {
            const double elev =
                -fov / 2.0 +
                fov * beam /
                    std::max<std::uint32_t>(config_.beams - 1, 1);
            const double ce = std::cos(elev);
            const geom::Vec3 dir{cy * ce, sy * ce, std::sin(elev)};

            double best_t = config_.maxRange;
            float intensity = 0.0f;
            bool hit = false;

            // Ground plane z = 0.
            if (dir.z < -1e-6) {
                const double tg = -origin.z / dir.z;
                if (tg < best_t) {
                    best_t = tg;
                    intensity = 0.25f;
                    hit = true;
                }
            }
            // Boxes.
            for (std::size_t c = 0; c < candidates.size(); ++c) {
                double tb = 0.0;
                // Cheap reject on the AABB first.
                if (!geom::rayAabb(origin, dir, candidateAabbs[c],
                                   tb) ||
                    tb >= best_t)
                    continue;
                if (geom::rayOrientedBox(origin, dir, *candidates[c],
                                         tb) &&
                    tb < best_t && tb > config_.minRange) {
                    best_t = tb;
                    intensity = 0.6f;
                    hit = true;
                }
            }
            if (!hit || best_t < config_.minRange)
                continue;
            if (rng.bernoulli(config_.dropProb))
                continue;
            const double d =
                best_t + rng.gaussian(0.0, config_.rangeNoise);
            // Vehicle frame: rotate the world direction back by the
            // ego yaw; z is kept as absolute height above ground
            // (sensor sits at mountHeight), so a pure planar pose
            // maps local points to the world.
            const geom::Vec2 flat =
                geom::Vec2{dir.x, dir.y}.rotated(-ego.yaw);
            cloud.push_back(pc::Point::fromVec(
                {flat.x * d, flat.y * d,
                 config_.mountHeight + dir.z * d},
                intensity, static_cast<std::uint16_t>(beam)));
        }
    }
    return cloud;
}

CameraModel::CameraModel(const CameraConfig &config) : config_(config)
{
}

CameraFrame
CameraModel::capture(const Scenario &scenario, sim::Tick t) const
{
    return capture(scenario, t, scenario.egoPoseAt(t));
}

CameraFrame
CameraModel::capture(const Scenario &scenario, sim::Tick t,
                     const geom::Pose2 &ego) const
{
    const double half_fov =
        config_.horizontalFovDeg * M_PI / 360.0;
    const std::vector<ActorState> actors = scenario.actorsAt(t);
    const auto &obstacles = scenario.obstacles();
    const geom::Vec3 cam_origin{ego.p.x, ego.p.y, 1.4};

    CameraFrame frame;
    frame.width = config_.width;
    frame.height = config_.height;

    for (const ActorState &actor : actors) {
        const geom::Vec2 rel = ego.toLocal(actor.box.pose.p);
        const double range = rel.norm();
        if (range < 2.0 || range > config_.maxRange)
            continue;
        const double bearing = std::atan2(rel.y, rel.x);
        if (std::fabs(bearing) > half_fov)
            continue;

        // Occlusion: cast the center ray against buildings and any
        // closer actor.
        const double target_h =
            (actor.box.zMax - actor.box.zMin) / 2.0;
        const geom::Vec3 target{actor.box.pose.p.x,
                                actor.box.pose.p.y, target_h};
        const geom::Vec3 dir = (target - cam_origin) / range;
        double occlusion = 0.0;
        for (const StaticObstacle &ob : obstacles) {
            double tb = 0.0;
            if (geom::rayOrientedBox(cam_origin, dir, ob.box, tb) &&
                tb < range - 1.0) {
                occlusion = 1.0;
                break;
            }
        }
        if (occlusion < 1.0) {
            for (const ActorState &other : actors) {
                if (other.id == actor.id)
                    continue;
                double tb = 0.0;
                if (geom::rayOrientedBox(cam_origin, dir, other.box,
                                         tb) &&
                    tb < range - 0.5) {
                    occlusion =
                        std::max(occlusion,
                                 0.6); // partial: offset body parts
                }
            }
        }
        if (occlusion >= 1.0)
            continue;

        VisibleObject vo;
        vo.truthId = actor.id;
        vo.cls = actor.cls;
        vo.range = range;
        vo.bearing = bearing;
        vo.imageHeightPx =
            config_.focalPx * (actor.box.zMax - actor.box.zMin) /
            range;
        vo.worldPos = actor.box.pose.p;
        vo.worldVelocity = actor.velocity;
        vo.occlusion = occlusion;
        frame.truth.push_back(vo);
    }
    return frame;
}

GnssFix
GnssModel::fix(const Scenario &scenario, sim::Tick t) const
{
    util::Rng rng(seed_ ^ (static_cast<std::uint64_t>(t) *
                           0x2545f4914f6cdd1dull));
    const geom::Pose2 ego = scenario.egoPoseAt(t);
    GnssFix out;
    out.position = {ego.p.x + rng.gaussian(0.0, sigma_),
                    ego.p.y + rng.gaussian(0.0, sigma_), 0.0};
    out.horizontalErr = sigma_;
    return out;
}

ImuSample
ImuModel::sample(const Scenario &scenario, sim::Tick t) const
{
    util::Rng rng(seed_ ^ (static_cast<std::uint64_t>(t) *
                           0xd6e8feb86659fd93ull));
    // Finite-difference the ground-truth heading for yaw rate.
    const sim::Tick dt = 10 * sim::oneMs;
    const geom::Pose2 a = scenario.egoPoseAt(t);
    const geom::Pose2 b = scenario.egoPoseAt(t + dt);
    ImuSample s;
    s.yawRate = geom::normalizeAngle(b.yaw - a.yaw) /
                    sim::ticksToSeconds(dt) +
                rng.gaussian(0.0, 0.01);
    s.accelX = rng.gaussian(0.0, 0.05);
    s.speed = scenario.egoSpeedAt(t) + rng.gaussian(0.0, 0.05);
    return s;
}

} // namespace av::world
