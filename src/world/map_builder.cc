#include "world/map_builder.hh"

#include "pointcloud/voxel_grid.hh"
#include "util/random.hh"

namespace av::world {

pc::PointCloud
MapBuilder::build(const Scenario &scenario, const LidarModel &lidar,
                  sim::Tick duration) const
{
    util::Rng rng(config_.seed);
    pc::PointCloud accumulated;

    for (sim::Tick t = 0; t <= duration; t += config_.scanInterval) {
        const pc::PointCloud scan = lidar.scan(scenario, t);
        geom::Pose2 pose = scenario.egoPoseAt(t);
        pose.p.x += rng.gaussian(0.0, config_.poseNoiseXy);
        pose.p.y += rng.gaussian(0.0, config_.poseNoiseXy);
        pose.yaw += rng.gaussian(0.0, config_.poseNoiseYaw);
        const geom::Pose lifted = pose.lift(0.0);
        for (const pc::Point &p : scan.points) {
            const geom::Vec3 w = lifted.apply(p.vec());
            accumulated.push_back(
                pc::Point::fromVec(w, p.intensity, p.ring));
        }
    }
    return pc::voxelGridDownsample(accumulated, config_.voxelLeaf);
}

} // namespace av::world
