/**
 * @file
 * Binary bag persistence for the AV sensor channels.
 *
 * The paper's methodology depends on one fixed recording feeding
 * every experiment (§III-A). In-memory ros::Bag already provides
 * that within a process; this module persists the four sensor
 * channels (/points_raw, /image_raw, /gnss_pose, /imu_raw) to a
 * compact little-endian binary file so a recorded drive can be
 * shared across processes/machines — the ROSBAG file itself.
 *
 * Format: "AVBG" magic, u32 version, then typed channel blocks,
 * each a (tag, message count) header followed by fixed-layout
 * records. Only the known sensor payload types are supported;
 * derived topics are cheap to regenerate by replaying.
 */

#ifndef AVSCOPE_WORLD_BAG_IO_HH
#define AVSCOPE_WORLD_BAG_IO_HH

#include <string>

#include "ros/bag.hh"
#include "world/sensors.hh"

namespace av::world {

/**
 * Write the sensor channels of @p bag to @p path.
 * Channels absent from the bag are skipped.
 * @return false on I/O failure
 */
bool saveSensorBag(const ros::Bag &bag, const std::string &path);

/**
 * Load a file written by saveSensorBag() into @p bag (channels are
 * appended). @return false on I/O failure or format mismatch.
 */
bool loadSensorBag(ros::Bag &bag, const std::string &path);

} // namespace av::world

#endif // AVSCOPE_WORLD_BAG_IO_HH
