#include "world/scenario.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace av::world {

const char *
actorClassName(ActorClass cls)
{
    switch (cls) {
      case ActorClass::Car: return "car";
      case ActorClass::Truck: return "truck";
      case ActorClass::Pedestrian: return "pedestrian";
      case ActorClass::Cyclist: return "cyclist";
    }
    return "?";
}

Scenario::Scenario(const ScenarioConfig &config) : config_(config)
{
    AV_ASSERT(config_.blockLength > 40.0 && config_.blockWidth > 40.0,
              "scenario block too small");
    buildRoute();
    buildObstacles();
    buildActors();
}

void
Scenario::buildRoute()
{
    const double hl = config_.blockLength / 2.0;
    const double hw = config_.blockWidth / 2.0;
    const std::vector<geom::Vec2> corners = {
        {-hl, -hw}, {hl, -hw}, {hl, hw}, {-hl, hw}};

    // Round each corner with an arc so the ego heading is
    // continuous (real vehicles cannot turn in place; an instant
    // 90-degree yaw step between sensor frames would also defeat
    // any scan matcher).
    const double radius = 9.0;
    const int arc_steps = 10;
    route_.clear();
    for (std::size_t i = 0; i < corners.size(); ++i) {
        const geom::Vec2 prev =
            corners[(i + corners.size() - 1) % corners.size()];
        const geom::Vec2 cur = corners[i];
        const geom::Vec2 next = corners[(i + 1) % corners.size()];
        const geom::Vec2 in_dir = (cur - prev).normalized();
        const geom::Vec2 out_dir = (next - cur).normalized();
        const geom::Vec2 entry = cur - in_dir * radius;
        const geom::Vec2 exit = cur + out_dir * radius;
        route_.push_back(entry);
        // Quadratic Bezier through the corner.
        for (int k = 1; k < arc_steps; ++k) {
            const double u =
                static_cast<double>(k) / arc_steps;
            const geom::Vec2 a = entry + (cur - entry) * u;
            const geom::Vec2 b = cur + (exit - cur) * u;
            route_.push_back(a + (b - a) * u);
        }
        route_.push_back(exit);
    }

    cumulative_.assign(route_.size() + 1, 0.0);
    for (std::size_t i = 0; i < route_.size(); ++i) {
        const geom::Vec2 a = route_[i];
        const geom::Vec2 b = route_[(i + 1) % route_.size()];
        cumulative_[i + 1] = cumulative_[i] + (b - a).norm();
    }
    routeLength_ = cumulative_.back();
}

namespace {

/** Position on a closed polyline at arclength s (no heading). */
geom::Vec2
polylineAt(const std::vector<geom::Vec2> &pts,
           const std::vector<double> &cumulative, double total,
           double s)
{
    s = std::fmod(s, total);
    if (s < 0.0)
        s += total;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (s <= cumulative[i + 1] || i + 1 == pts.size()) {
            const geom::Vec2 a = pts[i];
            const geom::Vec2 b = pts[(i + 1) % pts.size()];
            const double seg = cumulative[i + 1] - cumulative[i];
            const double frac =
                seg > 0.0 ? (s - cumulative[i]) / seg : 0.0;
            return a + (b - a) * frac;
        }
    }
    return pts[0];
}

} // namespace

geom::Pose2
Scenario::poseOnRoute(double s) const
{
    const geom::Vec2 here =
        polylineAt(route_, cumulative_, routeLength_, s);
    // Continuous heading via central difference so the ego yaw (and
    // therefore the IMU yaw rate) never steps between polyline
    // segments.
    const double h = 0.75;
    const geom::Vec2 ahead =
        polylineAt(route_, cumulative_, routeLength_, s + h);
    const geom::Vec2 behind =
        polylineAt(route_, cumulative_, routeLength_, s - h);
    return {here, (ahead - behind).heading()};
}

geom::Pose2
Scenario::egoPoseAt(sim::Tick t) const
{
    const double s = config_.egoSpeed * sim::ticksToSeconds(t);
    return poseOnRoute(s);
}

double
Scenario::egoSpeedAt(sim::Tick) const
{
    return config_.egoSpeed;
}

void
Scenario::buildObstacles()
{
    util::Rng rng(config_.seed ^ 0xb11d1125ull);
    const double hl = config_.blockLength / 2.0;
    const double hw = config_.blockWidth / 2.0;
    obstacles_.clear();

    // Buildings inside and outside the loop, set back ~10 m from the
    // roadway, with randomized footprints and heights.
    for (std::uint32_t i = 0; i < config_.nBuildings; ++i) {
        StaticObstacle ob;
        const int side = static_cast<int>(i % 4);
        const double along = rng.uniform(-0.85, 0.85);
        const double setback = rng.uniform(12.0, 26.0);
        const bool inside = rng.bernoulli(0.45);
        const double offset = inside ? -setback : setback;
        geom::Vec2 center;
        double heading = 0.0;
        switch (side) {
          case 0: // south edge (y = -hw)
            center = {along * hl, -hw + offset};
            heading = 0.0;
            break;
          case 1: // east edge
            center = {hl - offset, along * hw};
            heading = M_PI / 2;
            break;
          case 2: // north edge
            center = {along * hl, hw - offset};
            heading = 0.0;
            break;
          default: // west edge
            center = {-hl + offset, along * hw};
            heading = M_PI / 2;
            break;
        }
        ob.box.pose = {center, heading};
        ob.box.length = rng.uniform(10.0, 30.0);
        ob.box.width = rng.uniform(8.0, 20.0);
        ob.box.zMin = 0.0;
        ob.box.zMax = rng.uniform(6.0, 25.0);
        obstacles_.push_back(ob);
    }
}

void
Scenario::buildActors()
{
    // Independent streams per category so that e.g. a mapping pass
    // with nVehicles = 0 keeps byte-identical parked cars and
    // pedestrians.
    util::Rng veh_rng(config_.seed ^ 0xac708555ull);
    util::Rng park_rng(config_.seed ^ 0x9a47c3d1ull);
    util::Rng ped_rng(config_.seed ^ 0x51c0ffeeull);
    actors_.clear();

    // Moving NPC vehicles spread along the loop. Id ranges are
    // category-based so ids are stable across category counts.
    for (std::uint32_t i = 0; i < config_.nVehicles; ++i) {
        util::Rng &rng = veh_rng;
        Actor a;
        a.id = 1 + i;
        a.cls = rng.bernoulli(0.15) ? ActorClass::Truck
                                    : ActorClass::Car;
        if (a.cls == ActorClass::Truck) {
            a.length = 8.5;
            a.width = 2.5;
            a.height = 3.2;
        }
        a.routeOffset = rng.uniform(0.0, routeLength_);
        a.speed = rng.uniform(5.0, 11.0);
        actors_.push_back(a);
    }

    // Parked cars at the kerb (routeOffset fixed, speed 0, shifted
    // laterally off the driving line via basePos trick below).
    for (std::uint32_t i = 0; i < config_.nParked; ++i) {
        util::Rng &rng = park_rng;
        Actor a;
        a.id = 1000 + i;
        a.cls = ActorClass::Car;
        a.routeOffset = rng.uniform(0.0, routeLength_);
        a.speed = 0.0;
        actors_.push_back(a);
    }

    // Pedestrians oscillating near the kerb.
    for (std::uint32_t i = 0; i < config_.nPedestrians; ++i) {
        util::Rng &rng = ped_rng;
        Actor a;
        a.id = 2000 + i;
        a.cls = rng.bernoulli(0.2) ? ActorClass::Cyclist
                                   : ActorClass::Pedestrian;
        if (a.cls == ActorClass::Pedestrian) {
            a.length = 0.5;
            a.width = 0.5;
            a.height = 1.75;
        } else {
            a.length = 1.8;
            a.width = 0.6;
            a.height = 1.7;
        }
        a.onRoute = false;
        const geom::Pose2 anchor =
            poseOnRoute(rng.uniform(0.0, routeLength_));
        // 4-7 m to the side of the road.
        const geom::Vec2 lateral =
            geom::Vec2{0, 1}.rotated(anchor.yaw) *
            rng.uniform(4.0, 7.0) *
            (rng.bernoulli(0.5) ? 1.0 : -1.0);
        a.basePos = anchor.p + lateral;
        a.oscillateHeading = anchor.yaw;
        a.oscillateSpan = rng.uniform(5.0, 25.0);
        a.speed = a.cls == ActorClass::Pedestrian
                      ? rng.uniform(0.8, 1.8)
                      : rng.uniform(3.0, 6.0);
        actors_.push_back(a);
    }
}

std::vector<ActorState>
Scenario::actorsAt(sim::Tick t) const
{
    const double time = sim::ticksToSeconds(t);
    std::vector<ActorState> out;
    out.reserve(actors_.size());
    for (const Actor &a : actors_) {
        ActorState st;
        st.id = a.id;
        st.cls = a.cls;
        st.box.length = a.length;
        st.box.width = a.width;
        st.box.zMin = 0.0;
        st.box.zMax = a.height;
        if (a.onRoute) {
            if (a.speed > 0.0) {
                const double s = a.routeOffset + a.speed * time;
                geom::Pose2 pose = poseOnRoute(s);
                if (config_.vehicleLaneOffset != 0.0) {
                    pose.p += geom::Vec2{0, 1}.rotated(pose.yaw) *
                              config_.vehicleLaneOffset;
                }
                st.box.pose = pose;
                st.velocity = geom::Vec2{1, 0}.rotated(
                                  st.box.pose.yaw) *
                              a.speed;
            } else {
                // Parked: fixed pose, shifted 3 m to the kerb side.
                geom::Pose2 pose = poseOnRoute(a.routeOffset);
                const geom::Vec2 lateral =
                    geom::Vec2{0, 1}.rotated(pose.yaw) * 3.0;
                pose.p += lateral;
                st.box.pose = pose;
                st.velocity = {};
            }
        } else {
            // Sinusoidal walk around the anchor.
            const double omega =
                2.0 * M_PI * a.speed / (2.0 * a.oscillateSpan);
            const double disp =
                a.oscillateSpan * std::sin(omega * time);
            const geom::Vec2 dir =
                geom::Vec2{1, 0}.rotated(a.oscillateHeading);
            st.box.pose = {a.basePos + dir * disp,
                           a.oscillateHeading +
                               (std::cos(omega * time) >= 0.0
                                    ? 0.0
                                    : M_PI)};
            st.velocity =
                dir * (a.oscillateSpan * omega *
                       std::cos(omega * time));
        }
        out.push_back(st);
    }
    return out;
}

} // namespace av::world
