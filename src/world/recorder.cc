#include "world/recorder.hh"

namespace av::world {

namespace {

template <typename T>
ros::Stamped<T>
stamped(sim::Tick t, T data, std::size_t bytes, bool is_lidar,
        bool is_camera)
{
    ros::Stamped<T> msg;
    msg.header.stamp = t;
    if (is_lidar)
        msg.header.origins.lidar = t;
    if (is_camera)
        msg.header.origins.camera = t;
    msg.data = std::move(data);
    msg.bytes = bytes;
    return msg;
}

} // namespace

void
recordDrive(const Scenario &scenario, const LidarModel &lidar,
            const CameraModel &camera, const GnssModel &gnss,
            const ImuModel &imu, sim::Tick duration,
            const RecorderConfig &config, ros::Bag &out)
{
    auto &points = out.channel<pc::PointCloud>(topics::pointsRaw);
    auto &images = out.channel<CameraFrame>(topics::imageRaw);
    auto &fixes = out.channel<GnssFix>(topics::gnss);
    auto &imus = out.channel<ImuSample>(topics::imu);

    for (sim::Tick t = 0; t <= duration; t += config.lidarPeriod) {
        pc::PointCloud cloud = lidar.scan(scenario, t);
        const std::size_t bytes = cloud.byteSize();
        points.add(stamped(t, std::move(cloud), bytes, true, false));
    }
    for (sim::Tick t = config.cameraPhase; t <= duration;
         t += config.cameraPeriod) {
        CameraFrame frame = camera.capture(scenario, t);
        const std::size_t bytes =
            static_cast<std::size_t>(frame.width) * frame.height * 3;
        images.add(
            stamped(t, std::move(frame), bytes, false, true));
    }
    for (sim::Tick t = 0; t <= duration; t += config.gnssPeriod)
        fixes.add(stamped(t, gnss.fix(scenario, t), 64, false,
                          false));
    for (sim::Tick t = 0; t <= duration; t += config.imuPeriod)
        imus.add(stamped(t, imu.sample(scenario, t), 48, false,
                         false));
}

} // namespace av::world
