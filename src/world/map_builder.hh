/**
 * @file
 * Point-cloud map construction — the ndt_mapping step of the
 * paper's methodology (§III-A): the authors had no HD map for the
 * Nagoya drive, so they built a point-cloud map from the bag's own
 * LiDAR data and used it to stimulate the localization nodes. We do
 * exactly that: accumulate scans placed at (slightly noisy) mapping
 * poses, then voxel-downsample into the map NDT matches against.
 */

#ifndef AVSCOPE_WORLD_MAP_BUILDER_HH
#define AVSCOPE_WORLD_MAP_BUILDER_HH

#include "pointcloud/cloud.hh"
#include "world/scenario.hh"
#include "world/sensors.hh"

namespace av::world {

/** Mapping-pass parameters. */
struct MapBuilderConfig
{
    sim::Tick scanInterval = 500 * sim::oneMs; ///< keyframe spacing
    double voxelLeaf = 0.4;      ///< map resolution (m)
    double poseNoiseXy = 0.03;   ///< mapping-pose jitter (m)
    double poseNoiseYaw = 0.002; ///< radians
    std::uint64_t seed = 99;
};

/**
 * Drive the mapping pass over [0, duration] and return the world
 * point-cloud map.
 */
class MapBuilder
{
  public:
    explicit MapBuilder(const MapBuilderConfig &config =
                            MapBuilderConfig())
        : config_(config)
    {}

    /**
     * Build the map for @p scenario using @p lidar.
     * @param duration how much of the drive to map (one full loop
     *        is enough for a loop scenario)
     */
    pc::PointCloud build(const Scenario &scenario,
                         const LidarModel &lidar,
                         sim::Tick duration) const;

  private:
    MapBuilderConfig config_;
};

} // namespace av::world

#endif // AVSCOPE_WORLD_MAP_BUILDER_HH
