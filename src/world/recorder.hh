/**
 * @file
 * Drive recorder: samples the sensor models over a drive and stores
 * the streams in a ros::Bag — the "collect the ROSBAG once, replay
 * it into every configuration" methodology of the paper's Fig. 3.
 */

#ifndef AVSCOPE_WORLD_RECORDER_HH
#define AVSCOPE_WORLD_RECORDER_HH

#include "ros/bag.hh"
#include "world/scenario.hh"
#include "world/sensors.hh"

namespace av::world {

/** Topic names shared by recorder and stack (Table IV spelling). */
namespace topics {
inline constexpr const char *pointsRaw = "/points_raw";
inline constexpr const char *imageRaw = "/image_raw";
inline constexpr const char *gnss = "/gnss_pose";
inline constexpr const char *imu = "/imu_raw";
} // namespace topics

/** Sensor publication rates. */
struct RecorderConfig
{
    sim::Tick lidarPeriod = 100 * sim::oneMs;  ///< 10 Hz
    sim::Tick cameraPeriod = 66 * sim::oneMs;  ///< ~15 Hz
    sim::Tick gnssPeriod = sim::oneSec;        ///< 1 Hz
    sim::Tick imuPeriod = 40 * sim::oneMs;     ///< 25 Hz
    /** Phase offset of the camera versus the LiDAR (real rigs are
     *  not aligned; interference patterns depend on it). */
    sim::Tick cameraPhase = 37 * sim::oneMs;
};

/**
 * Record a complete drive.
 *
 * @param scenario the world
 * @param lidar,camera,gnss,imu sensor models
 * @param duration drive length
 * @param out      bag to fill (channels created on demand)
 */
void recordDrive(const Scenario &scenario, const LidarModel &lidar,
                 const CameraModel &camera, const GnssModel &gnss,
                 const ImuModel &imu, sim::Tick duration,
                 const RecorderConfig &config, ros::Bag &out);

} // namespace av::world

#endif // AVSCOPE_WORLD_RECORDER_HH
