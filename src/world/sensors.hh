/**
 * @file
 * Sensor models: spinning LiDAR (raycast against the scenario),
 * camera visibility, GNSS, IMU — the devices the paper's Table I /
 * Fig. 1 sensing layer provides.
 */

#ifndef AVSCOPE_WORLD_SENSORS_HH
#define AVSCOPE_WORLD_SENSORS_HH

#include <cstdint>
#include <vector>

#include "pointcloud/cloud.hh"
#include "world/scenario.hh"

namespace av::world {

/** LiDAR device parameters (16-channel spinning unit by default). */
struct LidarConfig
{
    std::uint32_t beams = 16;
    std::uint32_t azimuthSteps = 900; ///< per revolution
    double verticalFovDeg = 30.0;     ///< symmetric around horizon
    double maxRange = 80.0;           ///< meters
    double minRange = 1.0;
    double rangeNoise = 0.02;         ///< sigma, meters
    double mountHeight = 1.9;         ///< above ground
    double dropProb = 0.02;           ///< returns lost (dark surfaces)
};

/**
 * Spinning LiDAR: one full revolution per scan, hits against the
 * ground plane, buildings and actors. Points are emitted in the
 * sensor frame (x forward, z up), Velodyne-driver style.
 */
class LidarModel
{
  public:
    explicit LidarModel(const LidarConfig &config = LidarConfig(),
                        std::uint64_t seed = 7);

    /**
     * Produce the scan acquired at time @p t from the scenario's
     * scripted ego pose. Deterministic in (scenario, t, seed).
     */
    pc::PointCloud scan(const Scenario &scenario, sim::Tick t) const;

    /**
     * Scan from an explicit ego pose (closed-loop driving, where
     * the ego is controlled rather than scripted).
     */
    pc::PointCloud scan(const Scenario &scenario, sim::Tick t,
                        const geom::Pose2 &ego) const;

    const LidarConfig &config() const { return config_; }

  private:
    LidarConfig config_;
    std::uint64_t seed_;
};

/** One object the camera can see (ground truth + image geometry). */
struct VisibleObject
{
    std::uint32_t truthId = 0;
    ActorClass cls = ActorClass::Car;
    double range = 0.0;      ///< meters from camera
    double bearing = 0.0;    ///< radians, left positive
    double imageHeightPx = 0.0; ///< apparent size (detectability)
    geom::Vec2 worldPos;     ///< object center, world frame
    geom::Vec2 worldVelocity;
    double occlusion = 0.0;  ///< fraction hidden [0, 1]
};

/** Camera payload published on /image_raw: pixels are not
 *  synthesized; the frame carries the ground-truth visible set the
 *  detector model consumes, and the byte size of the real image for
 *  transport accounting. */
struct CameraFrame
{
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::vector<VisibleObject> truth;
};

/** Camera parameters. */
struct CameraConfig
{
    std::uint32_t width = 1280;
    std::uint32_t height = 720;
    double horizontalFovDeg = 90.0;
    double maxRange = 70.0;
    double focalPx = 700.0; ///< for apparent-size computation
};

/**
 * Pinhole-ish visibility model with coarse occlusion against
 * buildings and closer actors.
 */
class CameraModel
{
  public:
    explicit CameraModel(const CameraConfig &config = CameraConfig());

    /** Frame captured at time @p t (scripted ego pose). */
    CameraFrame capture(const Scenario &scenario, sim::Tick t) const;

    /** Frame captured from an explicit ego pose. */
    CameraFrame capture(const Scenario &scenario, sim::Tick t,
                        const geom::Pose2 &ego) const;

    /** Serialized byte size of one frame (RGB8). */
    std::size_t frameBytes() const
    {
        return static_cast<std::size_t>(config_.width) *
                   config_.height * 3 +
               64;
    }

    const CameraConfig &config() const { return config_; }

  private:
    CameraConfig config_;
};

/** GNSS fix payload. */
struct GnssFix
{
    geom::Vec3 position;
    double horizontalErr = 0.0; ///< 1-sigma, meters
};

/** GNSS with meter-level noise (paper §II-A). */
class GnssModel
{
  public:
    explicit GnssModel(double sigma = 1.5, std::uint64_t seed = 11)
        : sigma_(sigma), seed_(seed)
    {}

    GnssFix fix(const Scenario &scenario, sim::Tick t) const;

  private:
    double sigma_;
    std::uint64_t seed_;
};

/** IMU sample payload. */
struct ImuSample
{
    double yawRate = 0.0;    ///< rad/s
    double accelX = 0.0;     ///< m/s^2, body frame
    double speed = 0.0;      ///< wheel-odometry style velocity
};

/** IMU/odometry with small gaussian noise. */
class ImuModel
{
  public:
    explicit ImuModel(std::uint64_t seed = 13) : seed_(seed) {}

    ImuSample sample(const Scenario &scenario, sim::Tick t) const;

  private:
    std::uint64_t seed_;
};

} // namespace av::world

#endif // AVSCOPE_WORLD_SENSORS_HH
