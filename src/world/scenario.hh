/**
 * @file
 * The synthetic urban drive that replaces the paper's 8-minute
 * Nagoya recording (§III-A).
 *
 * An ego vehicle loops a city block lined with buildings while NPC
 * vehicles and pedestrians move around it. Everything is a
 * deterministic function of (config, seed, time), so recording the
 * same drive twice yields identical sensor streams — the property
 * the paper gets from ROSBAG replay. Scene density varies along the
 * loop (parked cars, a busy crossing, an empty stretch) because the
 * paper attributes node latency variation to the number of traffic
 * participants (§IV-A).
 */

#ifndef AVSCOPE_WORLD_SCENARIO_HH
#define AVSCOPE_WORLD_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "geom/pose.hh"
#include "geom/vec.hh"
#include "sim/ticks.hh"

namespace av::world {

/** Classes of traffic participants (COCO-compatible subset). */
enum class ActorClass : std::uint8_t {
    Car,
    Truck,
    Pedestrian,
    Cyclist,
};

const char *actorClassName(ActorClass cls);

/** A moving (or parked) traffic participant. */
struct Actor
{
    std::uint32_t id = 0;
    ActorClass cls = ActorClass::Car;
    double length = 4.4, width = 1.8, height = 1.5;
    /** Loop offset (m along the route) and speed (m/s); speed 0 =
     *  parked at the offset. Pedestrians use their own paths. */
    double routeOffset = 0.0;
    double speed = 0.0;
    bool onRoute = true;        ///< false: oscillates near basePos
    geom::Vec2 basePos;          ///< anchor for off-route actors
    double oscillateHeading = 0.0;
    double oscillateSpan = 0.0;  ///< walk amplitude (m)
};

/** Actor state at a given time. */
struct ActorState
{
    std::uint32_t id = 0;
    ActorClass cls = ActorClass::Car;
    geom::OrientedBox box;
    geom::Vec2 velocity;
};

/** Static world geometry (buildings, walls, street furniture). */
struct StaticObstacle
{
    geom::OrientedBox box;
};

/** Scenario generation knobs. */
struct ScenarioConfig
{
    std::uint64_t seed = 2020;
    double blockLength = 220.0; ///< rectangle loop, long side (m)
    double blockWidth = 140.0;  ///< short side (m)
    double egoSpeed = 8.0;      ///< m/s cruise
    std::uint32_t nVehicles = 20;   ///< moving NPC vehicles
    /** Lateral shift of moving NPC vehicles off the route line
     *  (meters, left-positive). 0 keeps them on the ego's line —
     *  fine for open-loop replay; closed-loop driving wants a real
     *  lane separation. */
    double vehicleLaneOffset = 0.0;
    std::uint32_t nParked = 14;     ///< parked cars along the kerb
    std::uint32_t nPedestrians = 20;
    std::uint32_t nBuildings = 36;
};

/**
 * The world. Pure queries: state at time t.
 */
class Scenario
{
  public:
    explicit Scenario(const ScenarioConfig &config = ScenarioConfig());

    /** Ground-truth ego pose at virtual time @p t. */
    geom::Pose2 egoPoseAt(sim::Tick t) const;

    /** Ego speed (m/s) at @p t (constant in this scenario). */
    double egoSpeedAt(sim::Tick t) const;

    /** Every actor's state at @p t (excluding the ego). */
    std::vector<ActorState> actorsAt(sim::Tick t) const;

    /** Static geometry. */
    const std::vector<StaticObstacle> &obstacles() const
    {
        return obstacles_;
    }

    /** The rectangular route as a closed polyline (corner points). */
    const std::vector<geom::Vec2> &route() const { return route_; }

    /** Total route length (m). */
    double routeLength() const { return routeLength_; }

    /** Position + heading at arclength @p s (wraps around). */
    geom::Pose2 poseOnRoute(double s) const;

    const ScenarioConfig &config() const { return config_; }

  private:
    ScenarioConfig config_;
    std::vector<geom::Vec2> route_;
    std::vector<double> cumulative_; ///< arclength at each vertex
    double routeLength_ = 0.0;
    std::vector<Actor> actors_;
    std::vector<StaticObstacle> obstacles_;

    void buildRoute();
    void buildObstacles();
    void buildActors();
};

} // namespace av::world

#endif // AVSCOPE_WORLD_SCENARIO_HH
