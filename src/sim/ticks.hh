/**
 * @file
 * The virtual time base.
 *
 * All simulated time in avscope is expressed in Ticks of one
 * nanosecond, mirroring gem5's convention. The paper instruments
 * Autoware with std::chrono wall-clock probes; our probes read the
 * event queue's virtual clock instead, so results are deterministic
 * and independent of the host machine.
 */

#ifndef AVSCOPE_SIM_TICKS_HH
#define AVSCOPE_SIM_TICKS_HH

#include <cstdint>

namespace av::sim {

/** Virtual time in nanoseconds. */
using Tick = std::uint64_t;

/** Maximum representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** One microsecond in ticks. */
constexpr Tick oneUs = 1000ull;

/** One millisecond in ticks. */
constexpr Tick oneMs = 1000ull * oneUs;

/** One second in ticks. */
constexpr Tick oneSec = 1000ull * oneMs;

/** Convert seconds (double) to ticks, rounding to nearest. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(oneSec) + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneSec);
}

/** Convert ticks to milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneMs);
}

/** Convert milliseconds (double) to ticks, rounding to nearest. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(oneMs) + 0.5);
}

} // namespace av::sim

#endif // AVSCOPE_SIM_TICKS_HH
