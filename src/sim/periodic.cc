#include "sim/periodic.hh"

#include <cmath>

#include "util/logging.hh"

namespace av::sim {

PeriodicTask::PeriodicTask(EventQueue &eq, Tick period,
                           std::function<void(std::uint64_t)> fn)
    : eq_(eq), period_(period), fn_(std::move(fn)), rng_(1)
{
    AV_ASSERT(period_ > 0, "periodic task needs a positive period");
    AV_ASSERT(fn_, "periodic task needs a callback");
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start(Tick phase, double jitter_fraction, std::uint64_t seed)
{
    AV_ASSERT(!running_, "periodic task started twice");
    AV_ASSERT(jitter_fraction >= 0.0 && jitter_fraction < 1.0,
              "jitter fraction out of range");
    jitter_ = jitter_fraction;
    rng_ = util::Rng(seed ? seed : 0xabcdef12345ull);
    running_ = true;
    scheduleNext(phase);
}

void
PeriodicTask::stop()
{
    if (!running_)
        return;
    running_ = false;
    eq_.deschedule(pendingEvent_);
    pendingEvent_ = 0;
}

void
PeriodicTask::scheduleNext(Tick delay)
{
    pendingEvent_ = eq_.scheduleAfter(delay, [this] { fire(); });
}

void
PeriodicTask::fire()
{
    pendingEvent_ = 0;
    const std::uint64_t index = count_++;
    // Reschedule before running the callback so the callback may call
    // stop() and cancel the chain.
    Tick next = period_;
    if (jitter_ > 0.0) {
        const double factor =
            1.0 + rng_.uniform(-jitter_, jitter_);
        next = static_cast<Tick>(
            std::max(1.0, static_cast<double>(period_) * factor));
    }
    scheduleNext(next);
    fn_(index);
}

} // namespace av::sim
