/**
 * @file
 * Periodic task helper for the event queue.
 *
 * Sensors (10 Hz LiDAR/camera) and the 1 Hz profiling samplers
 * (atop / nvidia-smi equivalents, paper §III-B) are periodic; this
 * wraps the self-rescheduling pattern with optional phase and jitter.
 */

#ifndef AVSCOPE_SIM_PERIODIC_HH
#define AVSCOPE_SIM_PERIODIC_HH

#include <functional>

#include "sim/event_queue.hh"
#include "util/random.hh"

namespace av::sim {

/**
 * Fires a callback every @p period ticks until stopped.
 */
class PeriodicTask
{
  public:
    /**
     * @param eq     queue to schedule on
     * @param period nominal interval between firings
     * @param fn     callback; receives the firing index (0-based)
     */
    PeriodicTask(EventQueue &eq, Tick period,
                 std::function<void(std::uint64_t)> fn);

    ~PeriodicTask();

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    /**
     * Arm the task. First firing at now + @p phase. With
     * @p jitter_fraction > 0 each subsequent interval is perturbed
     * uniformly by ±fraction·period (sensor clocks are never perfect;
     * this also decorrelates the LiDAR/camera phase over a drive).
     */
    void start(Tick phase = 0, double jitter_fraction = 0.0,
               std::uint64_t seed = 0);

    /** Cancel future firings. */
    void stop();

    /** True between start() and stop() (or destruction). */
    bool running() const { return running_; }

    /** Firings so far. */
    std::uint64_t firedCount() const { return count_; }

  private:
    void fire();
    void scheduleNext(Tick delay);

    EventQueue &eq_;
    Tick period_;
    std::function<void(std::uint64_t)> fn_;
    util::Rng rng_;
    double jitter_ = 0.0;
    EventId pendingEvent_ = 0;
    std::uint64_t count_ = 0;
    bool running_ = false;
};

} // namespace av::sim

#endif // AVSCOPE_SIM_PERIODIC_HH
