#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace av::sim {

EventId
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    AV_ASSERT(when >= now_, "scheduling into the past: when=", when,
              " now=", now_);
    AV_ASSERT(fn, "scheduling a null callback");
    const EventId id = nextId_++;
    queue_.push(Entry{when, id, std::move(fn)});
    ++live_;
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, std::function<void()> fn)
{
    AV_ASSERT(delay <= maxTick - now_, "tick overflow");
    return schedule(now_ + delay, std::move(fn));
}

void
EventQueue::deschedule(EventId id)
{
    if (id == 0 || id >= nextId_)
        return;
    // Only mark; lazily dropped when it reaches the head.
    if (cancelled_.insert(id).second && live_ > 0)
        --live_;
}

bool
EventQueue::isCancelled(EventId id) const
{
    return cancelled_.count(id) > 0;
}

void
EventQueue::popCancelled()
{
    while (!queue_.empty() && isCancelled(queue_.top().id)) {
        cancelled_.erase(queue_.top().id);
        queue_.pop();
    }
}

Tick
EventQueue::nextEventTick() const
{
    // const_cast-free variant: scan is not possible on priority_queue,
    // so callers get the head which may be cancelled; keep it exact by
    // cleaning first through a const_cast on the mutable pattern.
    auto *self = const_cast<EventQueue *>(this);
    self->popCancelled();
    return queue_.empty() ? maxTick : queue_.top().when;
}

bool
EventQueue::step()
{
    popCancelled();
    if (queue_.empty())
        return false;
    Entry e = queue_.top();
    queue_.pop();
    AV_ASSERT(e.when >= now_, "event queue went backwards");
    now_ = e.when;
    --live_;
    ++executed_;
    e.fn();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t ran = 0;
    while (true) {
        popCancelled();
        if (queue_.empty() || queue_.top().when > limit)
            break;
        step();
        ++ran;
    }
    // Advance the clock to the horizon so back-to-back runUntil()
    // calls see monotonic time even across quiet periods.
    if (limit != maxTick && now_ < limit)
        now_ = limit;
    return ran;
}

} // namespace av::sim
