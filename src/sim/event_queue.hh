/**
 * @file
 * Discrete-event simulation core.
 *
 * A single-threaded event queue drives the whole machine model: node
 * callbacks, CPU scheduler quanta, GPU kernel completions, sensor
 * firings and the 1 Hz profiling samplers are all events. Equal-time
 * events fire in scheduling (FIFO) order, making runs deterministic.
 */

#ifndef AVSCOPE_SIM_EVENT_QUEUE_HH
#define AVSCOPE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/ticks.hh"

namespace av::sim {

/** Opaque handle used to cancel a pending event. */
using EventId = std::uint64_t;

/**
 * Time-ordered queue of callbacks.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current virtual time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when (>= now).
     * @return a handle usable with deschedule().
     */
    EventId schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, std::function<void()> fn);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * event is a harmless no-op (the common pattern when a completion
     * event races a preemption event).
     */
    void deschedule(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (not cancelled, not fired) events. */
    std::size_t pending() const { return live_; }

    /** Time of the earliest live event, or maxTick when empty. */
    Tick nextEventTick() const;

    /**
     * Run events until the queue drains or @p limit is passed.
     * Events scheduled exactly at @p limit still run; the clock never
     * exceeds @p limit. @return number of events executed.
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /** Execute exactly one event if any; @return true if one ran. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        EventId id;     ///< also the FIFO tiebreaker
        std::function<void()> fn;
        bool operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::unordered_set<EventId> cancelled_;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::size_t live_ = 0;
    std::uint64_t executed_ = 0;

    bool isCancelled(EventId id) const;
    void popCancelled();
};

} // namespace av::sim

#endif // AVSCOPE_SIM_EVENT_QUEUE_HH
