#include "fault/fault.hh"

#include <bit>
#include <stdexcept>

#include "perception/nodes.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "world/recorder.hh"

namespace av::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LidarBlackout: return "lidar_blackout";
      case FaultKind::CameraBlackout: return "camera_blackout";
      case FaultKind::GnssBlackout: return "gnss_blackout";
      case FaultKind::FrameLoss: return "frame_loss";
      case FaultKind::NodeCrash: return "node_crash";
      case FaultKind::MessageDelay: return "msg_delay";
      case FaultKind::MessageDuplicate: return "msg_duplicate";
      case FaultKind::MessageCorrupt: return "msg_corrupt";
      case FaultKind::GpuThrottle: return "gpu_throttle";
    }
    return "?";
}

bool
faultKindFromName(const std::string &name, FaultKind &out)
{
    static constexpr FaultKind kAll[] = {
        FaultKind::LidarBlackout,    FaultKind::CameraBlackout,
        FaultKind::GnssBlackout,     FaultKind::FrameLoss,
        FaultKind::NodeCrash,        FaultKind::MessageDelay,
        FaultKind::MessageDuplicate, FaultKind::MessageCorrupt,
        FaultKind::GpuThrottle,
    };
    for (FaultKind kind : kAll) {
        if (name == faultKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

sim::Tick
faultWindowEnd(const FaultSpec &spec)
{
    if (spec.kind == FaultKind::NodeCrash)
        return spec.start + spec.respawnDelay;
    return spec.start + spec.duration;
}

std::string
faultLabel(const FaultSpec &spec)
{
    return std::string(faultKindName(spec.kind)) + "@" +
           std::to_string(spec.start / sim::oneMs) + "ms";
}

std::string
defaultWatchTopic(const FaultSpec &spec)
{
    switch (spec.kind) {
      case FaultKind::LidarBlackout:
        return perception::topics::lidarObjects;
      case FaultKind::CameraBlackout:
        return perception::topics::fusedObjects;
      case FaultKind::GnssBlackout:
        return perception::topics::ndtPose;
      case FaultKind::NodeCrash:
        return perception::topics::objects;
      case FaultKind::GpuThrottle:
        return perception::topics::imageObjects;
      case FaultKind::FrameLoss:
      case FaultKind::MessageDelay:
      case FaultKind::MessageDuplicate:
      case FaultKind::MessageCorrupt:
        return spec.target;
    }
    return spec.target;
}

std::uint64_t
faultSalt(const FaultSpec &spec)
{
    // FNV-1a over every spec field, matching the hashing discipline
    // of exp::cacheKey: the stream identity is the fault's content.
    std::uint64_t h = 14695981039346656037ULL;
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    const auto fold = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= kPrime;
        }
    };
    const auto foldText = [&h](const std::string &s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= kPrime;
        }
        h ^= 0xffu; // separator: "ab"+"c" != "a"+"bc"
        h *= kPrime;
    };
    fold(static_cast<std::uint64_t>(spec.kind));
    fold(spec.start);
    fold(spec.duration);
    foldText(spec.target);
    fold(std::bit_cast<std::uint64_t>(spec.probability));
    fold(std::bit_cast<std::uint64_t>(spec.factor));
    fold(spec.extraDelay);
    fold(spec.respawnDelay);
    foldText(spec.watchTopic);
    return h;
}

namespace {

/** True when the [start, end) windows of @p a and @p b intersect. */
bool
windowsOverlap(const FaultSpec &a, const FaultSpec &b)
{
    return a.start < faultWindowEnd(b) && b.start < faultWindowEnd(a);
}

/** Byte-identical specs: every field equal. */
bool
sameSpec(const FaultSpec &a, const FaultSpec &b)
{
    return a.kind == b.kind && a.start == b.start &&
           a.duration == b.duration && a.target == b.target &&
           a.probability == b.probability && a.factor == b.factor &&
           a.extraDelay == b.extraDelay &&
           a.respawnDelay == b.respawnDelay &&
           a.watchTopic == b.watchTopic;
}

FaultSpec
makeSpec(FaultKind kind, sim::Tick start, sim::Tick duration,
         std::string target)
{
    FaultSpec spec;
    spec.kind = kind;
    spec.start = start;
    spec.duration = duration;
    spec.target = std::move(target);
    return spec;
}

} // namespace

FaultPlan &
FaultPlan::lidarBlackout(sim::Tick start, sim::Tick duration)
{
    faults.push_back(makeSpec(FaultKind::LidarBlackout, start,
                              duration, world::topics::pointsRaw));
    return *this;
}

FaultPlan &
FaultPlan::cameraBlackout(sim::Tick start, sim::Tick duration)
{
    faults.push_back(makeSpec(FaultKind::CameraBlackout, start,
                              duration, world::topics::imageRaw));
    return *this;
}

FaultPlan &
FaultPlan::gnssBlackout(sim::Tick start, sim::Tick duration)
{
    faults.push_back(makeSpec(FaultKind::GnssBlackout, start,
                              duration, world::topics::gnss));
    return *this;
}

FaultPlan &
FaultPlan::frameLoss(const std::string &topic, sim::Tick start,
                     sim::Tick duration, double probability)
{
    FaultSpec spec =
        makeSpec(FaultKind::FrameLoss, start, duration, topic);
    spec.probability = probability;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::nodeCrash(const std::string &node, sim::Tick start,
                     sim::Tick respawn_delay)
{
    FaultSpec spec = makeSpec(FaultKind::NodeCrash, start, 0, node);
    spec.respawnDelay = respawn_delay;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::messageDelay(const std::string &topic, sim::Tick start,
                        sim::Tick duration, sim::Tick extra)
{
    FaultSpec spec =
        makeSpec(FaultKind::MessageDelay, start, duration, topic);
    spec.extraDelay = extra;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::messageDuplicate(const std::string &topic, sim::Tick start,
                            sim::Tick duration, double probability)
{
    FaultSpec spec =
        makeSpec(FaultKind::MessageDuplicate, start, duration, topic);
    spec.probability = probability;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::messageCorrupt(const std::string &topic, sim::Tick start,
                          sim::Tick duration, double probability)
{
    FaultSpec spec =
        makeSpec(FaultKind::MessageCorrupt, start, duration, topic);
    spec.probability = probability;
    faults.push_back(std::move(spec));
    return *this;
}

FaultPlan &
FaultPlan::gpuThrottle(sim::Tick start, sim::Tick duration,
                       double factor)
{
    FaultSpec spec = makeSpec(FaultKind::GpuThrottle, start, duration,
                              std::string());
    spec.factor = factor;
    faults.push_back(std::move(spec));
    return *this;
}

FaultInjector::FaultInjector(ros::RosGraph &graph,
                             const FaultPlan &plan)
    : graph_(graph), plan_(plan)
{
    for (const FaultSpec &spec : plan_.faults) {
        switch (spec.kind) {
          case FaultKind::NodeCrash:
            if (!graph_.findNode(spec.target))
                throw std::invalid_argument(
                    "fault plan: unknown crash target node '" +
                    spec.target + "'");
            break;
          case FaultKind::GpuThrottle:
            if (!(spec.factor > 0.0 && spec.factor <= 1.0))
                throw std::invalid_argument(
                    "fault plan: GPU throttle factor must be in "
                    "(0, 1]");
            break;
          default:
            if (spec.target.empty())
                throw std::invalid_argument(
                    "fault plan: transport fault '" +
                    std::string(faultKindName(spec.kind)) +
                    "' needs a target topic");
            if (spec.probability < 0.0 || spec.probability > 1.0)
                throw std::invalid_argument(
                    "fault plan: probability must be in [0, 1]");
            break;
        }
        FaultOutcome out;
        out.label = faultLabel(spec);
        out.kind = spec.kind;
        out.onset = spec.start;
        out.windowEnd = faultWindowEnd(spec);
        out.watchTopic = spec.watchTopic.empty()
                             ? defaultWatchTopic(spec)
                             : spec.watchTopic;
        outcomes_.push_back(std::move(out));
    }
    // Reject the genuinely ambiguous overlaps (see class comment);
    // everything else composes commutatively and may overlap freely.
    for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
        for (std::size_t j = i + 1; j < plan_.faults.size(); ++j) {
            const FaultSpec &a = plan_.faults[i];
            const FaultSpec &b = plan_.faults[j];
            if (sameSpec(a, b))
                throw std::invalid_argument(
                    "fault plan: duplicate fault '" + faultLabel(a) +
                    "' — identical specs share one Rng stream; vary "
                    "a field to make the streams independent");
            if (a.kind != b.kind)
                continue;
            if (a.kind == FaultKind::GpuThrottle &&
                windowsOverlap(a, b))
                throw std::invalid_argument(
                    "fault plan: overlapping GPU throttle windows "
                    "('" + faultLabel(a) + "', '" + faultLabel(b) +
                    "') — the first window's end would reset the "
                    "factor under the second");
            if (a.kind == FaultKind::NodeCrash &&
                a.target == b.target && windowsOverlap(a, b))
                throw std::invalid_argument(
                    "fault plan: overlapping crash windows for node "
                    "'" + a.target + "' — crash-while-down has no "
                    "defined respawn order");
        }
    }
}

void
FaultInjector::arm()
{
    AV_ASSERT(!armed_, "FaultInjector armed twice");
    armed_ = true;
    for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
        const FaultSpec &spec = plan_.faults[i];
        switch (spec.kind) {
          case FaultKind::NodeCrash:
            armNodeCrash(spec);
            break;
          case FaultKind::GpuThrottle:
            armGpuThrottle(spec);
            break;
          default:
            armTransportFault(spec, &outcomes_[i]);
            break;
        }
    }
}

void
FaultInjector::armTransportFault(const FaultSpec &spec,
                                 FaultOutcome *out)
{
    // Each fault gets an independent stream forked from the plan
    // seed, salted by the fault's *content* (not its plan index):
    // publish order is deterministic, so the draw sequence — and
    // therefore every probabilistic decision — replays exactly, and
    // reordering the plan cannot change any stream.
    util::Rng rng = util::Rng(plan_.seed).fork(faultSalt(spec));
    const sim::Tick start = spec.start;
    const sim::Tick end = spec.start + spec.duration;
    const FaultKind kind = spec.kind;
    const double p = spec.probability;
    const sim::Tick extra = spec.extraDelay;
    graph_.faults().addPolicy(
        spec.target,
        [rng, start, end, kind, p, extra, out](
            const ros::Header &, sim::Tick now) mutable {
            ros::Disruption d;
            if (now < start || now >= end)
                return d;
            switch (kind) {
              case FaultKind::LidarBlackout:
              case FaultKind::CameraBlackout:
              case FaultKind::GnssBlackout:
                d.drop = true;
                ++out->suppressed;
                break;
              case FaultKind::FrameLoss:
                if (rng.bernoulli(p)) {
                    d.drop = true;
                    ++out->suppressed;
                }
                break;
              case FaultKind::MessageDelay:
                d.extraDelay = extra;
                ++out->delayed;
                break;
              case FaultKind::MessageDuplicate:
                if (rng.bernoulli(p)) {
                    d.duplicates = 1;
                    ++out->duplicated;
                }
                break;
              case FaultKind::MessageCorrupt:
                if (rng.bernoulli(p)) {
                    d.corrupt = true;
                    ++out->corrupted;
                }
                break;
              default:
                break;
            }
            return d;
        });
}

void
FaultInjector::armNodeCrash(const FaultSpec &spec)
{
    ros::Node *node = graph_.findNode(spec.target);
    AV_ASSERT(node, "crash target vanished after validation");
    sim::EventQueue &eq = graph_.eventQueue();
    eq.schedule(spec.start, [node] { node->crash(); });
    eq.schedule(spec.start + spec.respawnDelay,
                [node] { node->respawn(); });
}

void
FaultInjector::armGpuThrottle(const FaultSpec &spec)
{
    hw::GpuModel &gpu = graph_.machine().gpu();
    sim::EventQueue &eq = graph_.eventQueue();
    const double factor = spec.factor;
    eq.schedule(spec.start,
                [&gpu, factor] { gpu.setThrottleFactor(factor); });
    eq.schedule(spec.start + spec.duration,
                [&gpu] { gpu.setThrottleFactor(1.0); });
}

std::vector<FaultOutcome>
FaultInjector::outcomes() const
{
    return std::vector<FaultOutcome>(outcomes_.begin(),
                                     outcomes_.end());
}

} // namespace av::fault
