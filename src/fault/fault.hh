/**
 * @file
 * Deterministic fault injection for whole-stack resilience studies.
 *
 * The paper characterizes the stack degrading under load (queue drops,
 * deadline violations); this layer *provokes* degradation on purpose
 * so the recovery behaviour can be characterized too. A FaultPlan is a
 * typed, replayable schedule: every fault window is expressed in sim
 * ticks and every probabilistic decision draws from an explicitly
 * seeded util::Rng, so a faulted run is exactly as reproducible as a
 * clean one — same plan + same seed => byte-identical results at any
 * worker count.
 *
 * Fault classes:
 *  - sensor blackout (LiDAR / camera / GNSS publication windows
 *    suppressed at the transport),
 *  - probabilistic frame loss on any topic,
 *  - node crash with respawn delay (queued inputs drain, node state
 *    resets via Node::onRespawn),
 *  - message delay / duplication / corruption at the minros layer,
 *  - GPU thermal-throttle windows (scaled kernel rate in av::hw).
 */

#ifndef AVSCOPE_FAULT_FAULT_HH
#define AVSCOPE_FAULT_FAULT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ros/ros.hh"
#include "sim/ticks.hh"

namespace av::fault {

/** The fault classes the injector can schedule. */
enum class FaultKind : std::uint8_t {
    LidarBlackout,    ///< /points_raw suppressed for a window
    CameraBlackout,   ///< /image_raw suppressed for a window
    GnssBlackout,     ///< /gnss_pose suppressed for a window
    FrameLoss,        ///< probabilistic drop on a chosen topic
    NodeCrash,        ///< node down; respawns after a delay
    MessageDelay,     ///< extra transport latency on a topic
    MessageDuplicate, ///< probabilistic duplicate delivery
    MessageCorrupt,   ///< probabilistic corrupt-and-discard
    GpuThrottle,      ///< thermal window scaling kernel rate
};

/** Stable lowercase name, e.g. "camera_blackout". */
const char *faultKindName(FaultKind kind);

/** Inverse of faultKindName(); false when @p name is unknown. */
bool faultKindFromName(const std::string &name, FaultKind &out);

/**
 * One scheduled fault. A flat record on purpose: it hashes into
 * ExperimentSpec::cacheKey() field by field and serializes without a
 * per-kind schema. Unused fields stay at their defaults.
 */
struct FaultSpec
{
    FaultKind kind = FaultKind::LidarBlackout;
    sim::Tick start = 0;    ///< fault onset (virtual time)
    sim::Tick duration = 0; ///< window length (0 for NodeCrash)
    /** Topic name for transport faults; node name for NodeCrash. */
    std::string target;
    double probability = 1.0; ///< per-message chance (loss/dup/corrupt)
    double factor = 1.0;      ///< GPU throttle rate multiplier
    sim::Tick extraDelay = 0;   ///< MessageDelay surcharge
    sim::Tick respawnDelay = 0; ///< NodeCrash downtime
    /**
     * Topic whose publications indicate this fault has been absorbed;
     * empty picks a per-kind default (see defaultWatchTopic).
     */
    std::string watchTopic;
};

/** End of the disturbance window (crashes end at respawn). */
sim::Tick faultWindowEnd(const FaultSpec &spec);

/** Report label, e.g. "camera_blackout@2000ms" (token-safe). */
std::string faultLabel(const FaultSpec &spec);

/** Per-kind default recovery-watch topic for @p spec. */
std::string defaultWatchTopic(const FaultSpec &spec);

/**
 * Content-derived Rng-stream salt for one fault: an FNV-1a hash over
 * every FaultSpec field. Overlapping transport faults compose
 * commutatively at the minros layer (any drop wins, any corrupt
 * wins, delays add, duplicate counts add — see ros::TransportFaults),
 * so with content-derived streams the *order* faults appear in a
 * plan cannot change the run: each fault draws from a stream defined
 * by what it is, not by where it sits in the vector.
 */
std::uint64_t faultSalt(const FaultSpec &spec);

/**
 * A replayable fault schedule. Build fluently:
 *
 *   auto plan = FaultPlan()
 *                   .cameraBlackout(2 * sim::oneSec, sim::oneSec)
 *                   .gpuThrottle(4 * sim::oneSec, sim::oneSec, 0.4);
 */
struct FaultPlan
{
    /** Seed for every probabilistic fault decision in this plan. */
    std::uint64_t seed = 2027;
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    FaultPlan &lidarBlackout(sim::Tick start, sim::Tick duration);
    FaultPlan &cameraBlackout(sim::Tick start, sim::Tick duration);
    FaultPlan &gnssBlackout(sim::Tick start, sim::Tick duration);
    FaultPlan &frameLoss(const std::string &topic, sim::Tick start,
                         sim::Tick duration, double probability);
    FaultPlan &nodeCrash(const std::string &node, sim::Tick start,
                         sim::Tick respawn_delay);
    FaultPlan &messageDelay(const std::string &topic, sim::Tick start,
                            sim::Tick duration, sim::Tick extra);
    FaultPlan &messageDuplicate(const std::string &topic,
                                sim::Tick start, sim::Tick duration,
                                double probability);
    FaultPlan &messageCorrupt(const std::string &topic,
                              sim::Tick start, sim::Tick duration,
                              double probability);
    FaultPlan &gpuThrottle(sim::Tick start, sim::Tick duration,
                           double factor);
};

/**
 * What one fault did to the run: transport counters filled by the
 * injector's policies, recovery fields filled by prof::RecoveryProbe.
 */
struct FaultOutcome
{
    std::string label;  ///< faultLabel() of the spec
    FaultKind kind = FaultKind::LidarBlackout;
    sim::Tick onset = 0;
    sim::Tick windowEnd = 0;
    std::string watchTopic;
    /** Watch-topic publications inside [onset, windowEnd). */
    std::uint64_t publishedDuringWindow = 0;
    /** Fault onset -> first watch-topic publication at/after the
     *  window end, in ms; -1 = never recovered. */
    double recoveryMs = -1.0;
    std::uint64_t suppressed = 0; ///< messages dropped on the wire
    std::uint64_t corrupted = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
};

/**
 * Arms a FaultPlan against one RosGraph + Machine. Construct after
 * the stack (so crash targets resolve), call arm() once before the
 * run. Throws std::invalid_argument for a plan referencing an unknown
 * node or an empty topic target — a plan typo must not silently
 * no-op an experiment.
 *
 * Composition rule for overlapping windows: transport faults merge
 * commutatively (see faultSalt), so any set of them may overlap on
 * any topic and the plan's fault order is immaterial. Three shapes
 * are *genuinely* ambiguous and rejected from the ctor instead:
 *  - two byte-identical FaultSpecs (their Rng streams would collapse
 *    into one correlated stream — duplicate the window with distinct
 *    probabilities or starts if doubling intensity is intended),
 *  - overlapping GpuThrottle windows (the earlier window's end event
 *    resets the throttle factor to 1.0 while the later window is
 *    still open — last-writer-wins on a global knob),
 *  - overlapping NodeCrash windows on the same node (crashing an
 *    already-crashed node and racing its respawns has no defined
 *    semantics).
 */
class FaultInjector
{
  public:
    FaultInjector(ros::RosGraph &graph, const FaultPlan &plan);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install transport policies and schedule crash/throttle events. */
    void arm();

    /** One outcome per plan fault, in plan order. */
    std::vector<FaultOutcome> outcomes() const;

  private:
    ros::RosGraph &graph_;
    FaultPlan plan_;
    bool armed_ = false;
    /** Stable storage: policies capture pointers into this deque. */
    std::deque<FaultOutcome> outcomes_;

    void armTransportFault(const FaultSpec &spec, FaultOutcome *out);
    void armNodeCrash(const FaultSpec &spec);
    void armGpuThrottle(const FaultSpec &spec);
};

} // namespace av::fault

#endif // AVSCOPE_FAULT_FAULT_HH
