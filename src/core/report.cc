#include "core/report.hh"

#include <filesystem>
#include <fstream>

#include "util/table.hh"

namespace av::prof {

namespace {

/** Render @p table into <dir>/<name>; false on I/O failure. */
bool
emit(const util::Table &table, const std::filesystem::path &dir,
     const char *name)
{
    std::ofstream os(dir / name, std::ios::trunc);
    if (!os)
        return false;
    table.printCsv(os);
    return static_cast<bool>(os);
}

} // namespace

bool
writeRunReport(const RunResult &run, const std::string &directory)
{
    const std::filesystem::path dir(directory);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return false;

    using util::Table;

    // ---- node latency (Fig. 5) -----------------------------------
    Table latency("", {"node", "count", "min_ms", "q1_ms",
                       "median_ms", "mean_ms", "q3_ms", "p99_ms",
                       "max_ms", "stddev_ms"});
    for (const NodeLatency &node : run.nodeLatencies()) {
        const util::DistributionSummary &s = node.summary;
        latency.addRow({node.name, std::to_string(s.count),
                        Table::num(s.min, 4), Table::num(s.q1, 4),
                        Table::num(s.median, 4),
                        Table::num(s.mean, 4), Table::num(s.q3, 4),
                        Table::num(s.p99, 4), Table::num(s.max, 4),
                        Table::num(s.stddev, 4)});
    }
    if (!emit(latency, dir, "node_latency.csv"))
        return false;

    // ---- end-to-end paths (Fig. 6) -------------------------------
    Table paths("", {"path", "count", "min_ms", "q1_ms", "mean_ms",
                     "q3_ms", "p99_ms", "max_ms"});
    for (const NamedSeries &row : run.paths) {
        const auto s = row.series.summarize();
        paths.addRow({row.name, std::to_string(s.count),
                      Table::num(s.min, 4), Table::num(s.q1, 4),
                      Table::num(s.mean, 4), Table::num(s.q3, 4),
                      Table::num(s.p99, 4), Table::num(s.max, 4)});
    }
    if (!emit(paths, dir, "paths.csv"))
        return false;

    // ---- drops (Table III) ---------------------------------------
    Table drops("", {"topic", "node", "delivered", "dropped",
                     "drop_rate"});
    for (const DropRow &row : run.drops) {
        drops.addRow({row.topic, row.node,
                      std::to_string(row.delivered),
                      std::to_string(row.dropped),
                      Table::num(row.dropRate(), 6)});
    }
    if (!emit(drops, dir, "drops.csv"))
        return false;

    // ---- utilization (Table V) -----------------------------------
    Table util_table("", {"owner", "cpu_share", "gpu_residency"});
    for (const UtilizationResult &row : run.utilization) {
        util_table.addRow({row.owner,
                           Table::num(row.cpuShare.mean(), 6),
                           Table::num(row.gpuShare.mean(), 6)});
    }
    util_table.addRow({"TOTAL", Table::num(run.totalCpu.mean(), 6),
                       Table::num(run.totalGpu.mean(), 6)});
    if (!emit(util_table, dir, "utilization.csv"))
        return false;

    // ---- power (Table VI) ----------------------------------------
    Table power("", {"device", "mean_w", "min_w", "max_w",
                     "energy_j"});
    power.addRow({"cpu", Table::num(run.cpuWatts.mean(), 3),
                  Table::num(run.cpuWatts.min(), 3),
                  Table::num(run.cpuWatts.max(), 3),
                  Table::num(run.cpuEnergyJ, 1)});
    power.addRow({"gpu", Table::num(run.gpuWatts.mean(), 3),
                  Table::num(run.gpuWatts.min(), 3),
                  Table::num(run.gpuWatts.max(), 3),
                  Table::num(run.gpuEnergyJ, 1)});
    if (!emit(power, dir, "power.csv"))
        return false;

    // ---- counters (Table VII / Fig. 7) ---------------------------
    Table counters("", {"node", "ipc", "l1_read_miss",
                        "l1_write_miss", "branch_miss", "loads",
                        "stores", "branches", "int", "fp", "div",
                        "simd", "other"});
    for (const CounterRow &row : run.counters) {
        counters.addRow({row.node, Table::num(row.ipc, 4),
                         Table::num(row.l1ReadMissRate, 6),
                         Table::num(row.l1WriteMissRate, 6),
                         Table::num(row.branchMissRate, 6),
                         std::to_string(row.mix.loads),
                         std::to_string(row.mix.stores),
                         std::to_string(row.mix.branches),
                         std::to_string(row.mix.intAlu),
                         std::to_string(row.mix.fpAlu),
                         std::to_string(row.mix.fpDiv),
                         std::to_string(row.mix.simd),
                         std::to_string(row.mix.other)});
    }
    return emit(counters, dir, "counters.csv");
}

bool
writeRunReport(const CharacterizationRun &run,
               const std::string &directory)
{
    return writeRunReport(snapshotRun(run), directory);
}

} // namespace av::prof
