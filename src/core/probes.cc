#include "core/probes.hh"

#include "perception/objects.hh"

namespace av::prof {

UtilizationMonitor::UtilizationMonitor(sim::EventQueue &eq,
                                       hw::Machine &machine,
                                       sim::Tick period)
    : machine_(machine), period_(period),
      task_(eq, period, [this](std::uint64_t) { sample(); })
{
}

void
UtilizationMonitor::sample()
{
    const double window = sim::ticksToSeconds(period_);
    const auto &cpu = machine_.cpu().accounting();
    const auto &gpu = machine_.gpu().accounting();
    const double cores =
        static_cast<double>(machine_.cpu().config().cores);

    const double busy_delta =
        cpu.busyCoreSeconds - lastBusyCoreS_;
    lastBusyCoreS_ = cpu.busyCoreSeconds;
    totalCpu_.add(busy_delta / (window * cores));

    const double kernel_delta =
        gpu.kernelActiveSeconds - lastKernelActiveS_;
    lastKernelActiveS_ = gpu.kernelActiveSeconds;
    totalGpu_.add(kernel_delta / window);

    // Per-owner CPU share of the whole processor.
    for (const auto &[owner, seconds] : cpu.busySecondsByOwner) {
        const double delta = seconds - lastOwnerCpuS_[owner];
        lastOwnerCpuS_[owner] = seconds;
        rows_[owner].cpuShare.add(delta / (window * cores));
    }
    // Per-owner GPU residency (nvidia-smi pmon style).
    for (const auto &[owner, seconds] :
         gpu.residentSecondsByOwner) {
        const double delta = seconds - lastOwnerGpuS_[owner];
        lastOwnerGpuS_[owner] = seconds;
        rows_[owner].gpuShare.add(delta / window);
    }
}

PowerMonitor::PowerMonitor(sim::EventQueue &eq, hw::Machine &machine,
                           sim::Tick period)
    : machine_(machine), period_(period),
      task_(eq, period, [this](std::uint64_t) { sample(); })
{
}

void
PowerMonitor::sample()
{
    const double window = sim::ticksToSeconds(period_);
    const auto &cpu = machine_.cpu().accounting();
    const auto &gpu = machine_.gpu().accounting();

    const double busy_delta =
        cpu.busyCoreSeconds - lastBusyCoreS_;
    lastBusyCoreS_ = cpu.busyCoreSeconds;
    const double dram_delta = cpu.dramBytes - lastDramBytes_;
    lastDramBytes_ = cpu.dramBytes;
    const double weighted_delta =
        gpu.weightedActiveSeconds - lastWeightedActiveS_;
    lastWeightedActiveS_ = gpu.weightedActiveSeconds;
    const double copy_delta =
        gpu.copyActiveSeconds - lastCopyActiveS_;
    lastCopyActiveS_ = gpu.copyActiveSeconds;

    const double cpu_watts = machine_.power().cpuPower(
        busy_delta / window, dram_delta / window * 1e-9);
    const double gpu_watts = machine_.power().gpuPower(
        weighted_delta / window, copy_delta / window);
    cpuW_.add(cpu_watts);
    gpuW_.add(gpu_watts);
    cpuJ_ += cpu_watts * window;
    gpuJ_ += gpu_watts * window;
}

const char *
pathName(Path path)
{
    switch (path) {
      case Path::Localization: return "localization";
      case Path::CostmapPoints: return "costmap_points";
      case Path::CostmapVisionObj: return "costmap_vision_obj";
      case Path::CostmapClusterObj: return "costmap_cluster_obj";
    }
    return "?";
}

PathTracer::PathTracer(ros::RosGraph &graph)
{
    series_.emplace(Path::Localization, util::SampleSeries(1u << 15));
    series_.emplace(Path::CostmapPoints,
                    util::SampleSeries(1u << 15));
    series_.emplace(Path::CostmapVisionObj,
                    util::SampleSeries(1u << 15));
    series_.emplace(Path::CostmapClusterObj,
                    util::SampleSeries(1u << 15));

    auto &eq = graph.eventQueue();

    graph.topic<perception::PoseEstimate>(perception::topics::ndtPose)
        .addTap([this, &eq](
                    const ros::Stamped<perception::PoseEstimate>
                        &msg) {
            if (msg.header.origins.lidar)
                record(Path::Localization, msg.header.origins.lidar,
                       eq.now());
        });

    graph.topic<perception::Costmap>(perception::topics::costmap)
        .addTap([this,
                 &eq](const ros::Stamped<perception::Costmap> &msg) {
            const ros::Origins &o = msg.header.origins;
            if (o.camera) {
                // Object layer (fused lineage): both Table IV
                // object paths end here.
                record(Path::CostmapVisionObj, o.camera, eq.now());
                if (o.lidar)
                    record(Path::CostmapClusterObj, o.lidar,
                           eq.now());
            } else if (o.lidar) {
                // Points layer: LiDAR-only lineage.
                record(Path::CostmapPoints, o.lidar, eq.now());
            }
        });
}

void
PathTracer::record(Path path, sim::Tick origin, sim::Tick now)
{
    if (now >= origin)
        series_.at(path).add(sim::ticksToMs(now - origin));
}

const util::SampleSeries &
PathTracer::series(Path path) const
{
    return series_.at(path);
}

double
PathTracer::worstCaseP99() const
{
    double worst = 0.0;
    for (const auto &[path, series] : series_)
        worst = std::max(worst, series.quantile(0.99));
    return worst;
}

double
PathTracer::worstCaseMean() const
{
    double worst = 0.0;
    for (const auto &[path, series] : series_)
        worst = std::max(worst, series.running().mean());
    return worst;
}

double
PathTracer::worstCaseMax() const
{
    double worst = 0.0;
    for (const auto &[path, series] : series_) {
        if (series.count() > 0)
            worst = std::max(worst, series.running().max());
    }
    return worst;
}

std::vector<DropRow>
collectDrops(const ros::RosGraph &graph)
{
    std::vector<DropRow> out;
    for (const ros::Node *node : graph.nodes()) {
        for (const auto &sub : node->subscriptions()) {
            DropRow row;
            row.topic = sub->topicName();
            row.node = node->name();
            row.delivered = sub->stats().delivered;
            row.dropped = sub->stats().dropped;
            out.push_back(std::move(row));
        }
    }
    return out;
}

StalenessMonitor::StalenessMonitor(ros::RosGraph &graph,
                                   const trace::Recorder &recorder,
                                   sim::Tick period,
                                   std::vector<std::string> topics)
    : eq_(graph.eventQueue()), recorder_(recorder), period_(period),
      task_(graph.eventQueue(), period,
            [this](std::uint64_t) { sample(); })
{
    if (topics.empty()) {
        namespace t = perception::topics;
        topics = {t::ndtPose,      t::lidarObjects,
                  t::imageObjects, t::fusedObjects,
                  t::trackedObjects, t::objects, t::costmap};
    }
    for (const std::string &name : topics) {
        if (!graph.findTopic(name))
            continue; // absent subsystem: no row, not "stale"
        rows_.emplace_back(name);
    }
}

void
StalenessMonitor::sample()
{
    const sim::Tick now = eq_.now();
    for (StalenessRow &row : rows_) {
        const trace::PublishRecord *last =
            recorder_.lastPublish(row.topic);
        if (!last)
            continue;
        row.lastStamp = last->stamp;
        row.seen = true;
        row.ageMs.add(sim::ticksToMs(now - row.lastStamp));
    }
}

RecoveryProbe::RecoveryProbe(const trace::Recorder &recorder,
                             const fault::FaultPlan &plan)
    : recorder_(recorder)
{
    for (const fault::FaultSpec &spec : plan.faults) {
        Record rec;
        rec.watchTopic = spec.watchTopic.empty()
                             ? fault::defaultWatchTopic(spec)
                             : spec.watchTopic;
        rec.onset = spec.start;
        rec.windowEnd = fault::faultWindowEnd(spec);
        windows_.push_back(std::move(rec));
    }
}

std::vector<RecoveryProbe::Record>
RecoveryProbe::records() const
{
    std::vector<Record> out = windows_;
    for (Record &rec : out) {
        const std::vector<trace::PublishRecord> *log =
            recorder_.publishLog(rec.watchTopic);
        if (!log)
            continue; // never published: recoveryMs stays -1
        for (const trace::PublishRecord &pub : *log) {
            if (pub.stamp >= rec.onset &&
                pub.stamp < rec.windowEnd)
                ++rec.publishedDuringWindow;
            if (pub.stamp >= rec.windowEnd && rec.recoveryMs < 0.0)
                rec.recoveryMs =
                    sim::ticksToMs(pub.stamp - rec.onset);
        }
    }
    return out;
}

void
RecoveryProbe::fill(std::vector<fault::FaultOutcome> &outcomes) const
{
    const std::vector<Record> recs = records();
    AV_ASSERT(outcomes.size() == recs.size(),
              "recovery probe / injector plan mismatch");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        outcomes[i].publishedDuringWindow =
            recs[i].publishedDuringWindow;
        outcomes[i].recoveryMs = recs[i].recoveryMs;
    }
}

std::vector<CounterRow>
collectCounters(
    const std::vector<perception::PerceptionNode *> &nodes)
{
    std::vector<CounterRow> out;
    for (const perception::PerceptionNode *node : nodes) {
        CounterRow row;
        row.node = node->name();
        row.ipc = node->arch().lifetimeIpc();
        row.l1ReadMissRate = node->arch().cacheStats().readMissRate();
        row.l1WriteMissRate =
            node->arch().cacheStats().writeMissRate();
        row.branchMissRate = node->arch().branchStats().missRate();
        row.mix = node->arch().totalOps();
        out.push_back(std::move(row));
    }
    return out;
}

} // namespace av::prof
