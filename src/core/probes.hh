/**
 * @file
 * Profiling probes — the measurement instruments of the paper's
 * methodology (§III-B):
 *
 *  - UtilizationMonitor: atop-equivalent, 1 Hz per-node CPU share +
 *    nvidia-smi-equivalent GPU residency (Table V);
 *  - PowerMonitor: 1 Hz CPU/GPU watts (Table VI);
 *  - PathTracer: end-to-end computation-path latency via the
 *    sensor-origin timestamps carried in message headers (Fig. 6,
 *    Table IV);
 *  - DropMonitor: per-topic dropped-message accounting (Table III);
 *  - CounterProbe: PAPI-equivalent µarch counters per node
 *    (Table VII, Fig. 7).
 */

#ifndef AVSCOPE_CORE_PROBES_HH
#define AVSCOPE_CORE_PROBES_HH

#include <map>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "perception/nodes.hh"
#include "ros/ros.hh"
#include "sim/periodic.hh"
#include "trace/trace.hh"
#include "util/stats.hh"

namespace av::prof {

/** One owner's utilization summary. */
struct UtilizationRow
{
    util::RunningStats cpuShare; ///< fraction of all cores, per 1 s
    util::RunningStats gpuShare; ///< residency fraction, per 1 s
};

/**
 * Samples machine accounting at 1 Hz (the finest grain atop offers,
 * per the paper).
 */
class UtilizationMonitor
{
  public:
    UtilizationMonitor(sim::EventQueue &eq, hw::Machine &machine,
                       sim::Tick period = sim::oneSec);

    /** Arm the 1 Hz sampler (first sample after one full window). */
    void start() { task_.start(period_); }
    void stop() { task_.stop(); }

    const std::map<std::string, UtilizationRow> &rows() const
    {
        return rows_;
    }

    /** Whole-machine utilization over the run. */
    const util::RunningStats &totalCpu() const { return totalCpu_; }
    const util::RunningStats &totalGpu() const { return totalGpu_; }

  private:
    void sample();

    hw::Machine &machine_;
    sim::Tick period_;
    sim::PeriodicTask task_;
    std::map<std::string, UtilizationRow> rows_;
    util::RunningStats totalCpu_;
    util::RunningStats totalGpu_;

    double lastBusyCoreS_ = 0.0;
    double lastKernelActiveS_ = 0.0;
    std::map<std::string, double> lastOwnerCpuS_;
    std::map<std::string, double> lastOwnerGpuS_;
};

/**
 * Samples power at 1 Hz using the machine's power model over the
 * last window's utilization integrals.
 */
class PowerMonitor
{
  public:
    PowerMonitor(sim::EventQueue &eq, hw::Machine &machine,
                 sim::Tick period = sim::oneSec);

    /** Arm the 1 Hz sampler (first sample after one full window). */
    void start() { task_.start(period_); }
    void stop() { task_.stop(); }

    const util::RunningStats &cpuWatts() const { return cpuW_; }
    const util::RunningStats &gpuWatts() const { return gpuW_; }

    /** Integrated energy over the sampled windows (J). */
    double cpuEnergyJ() const { return cpuJ_; }
    double gpuEnergyJ() const { return gpuJ_; }

  private:
    void sample();

    hw::Machine &machine_;
    sim::Tick period_;
    sim::PeriodicTask task_;
    util::RunningStats cpuW_;
    util::RunningStats gpuW_;
    double cpuJ_ = 0.0, gpuJ_ = 0.0;

    double lastBusyCoreS_ = 0.0;
    double lastDramBytes_ = 0.0;
    double lastWeightedActiveS_ = 0.0;
    double lastCopyActiveS_ = 0.0;
};

/** The paper's four computation paths (Table IV). */
enum class Path {
    Localization,
    CostmapPoints,
    CostmapVisionObj,
    CostmapClusterObj,
};

const char *pathName(Path path);

/**
 * Records end-to-end latency per computation path by tapping the
 * terminal topics and reading the origin stamps.
 */
class PathTracer
{
  public:
    explicit PathTracer(ros::RosGraph &graph);

    const util::SampleSeries &series(Path path) const;

    /** Worst-path p99 — the paper's end-to-end latency metric. */
    double worstCaseP99() const;

    /** Worst-path mean. */
    double worstCaseMean() const;

    /** Worst observed end-to-end latency across all paths. */
    double worstCaseMax() const;

  private:
    std::map<Path, util::SampleSeries> series_;

    void record(Path path, sim::Tick origin, sim::Tick now);
};

/** One topic/subscriber drop row (Table III). */
struct DropRow
{
    std::string topic;
    std::string node;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    double dropRate() const
    {
        return delivered ? double(dropped) / double(delivered) : 0.0;
    }
};

/** Harvest drop statistics from the whole graph. */
std::vector<DropRow> collectDrops(const ros::RosGraph &graph);

/** One node's µarch counters (Table VII row + Fig. 7 column). */
struct CounterRow
{
    std::string node;
    double ipc = 0.0;
    double l1ReadMissRate = 0.0;
    double l1WriteMissRate = 0.0;
    double branchMissRate = 0.0;
    uarch::OpCounts mix;
};

/** Harvest µarch counters from the stack's nodes. */
std::vector<CounterRow>
collectCounters(const std::vector<perception::PerceptionNode *> &nodes);

/** One watched topic's publication-age distribution. */
struct StalenessRow
{
    std::string topic;
    util::SampleSeries ageMs; ///< sampled now - lastStamp, in ms
    sim::Tick lastStamp = 0;
    bool seen = false;

    explicit StalenessRow(std::string name)
        : topic(std::move(name)), ageMs(1u << 12)
    {}
};

/**
 * Samples the age of each watched topic's newest publication on a
 * fixed period — the distribution a health monitor would alarm on.
 * Topics are sampled only after their first publication, so a
 * disabled subsystem reads as absent, not stale.
 *
 * Reads the recorder's always-on publish log instead of installing
 * bespoke header taps: av::trace::Recorder is the single recording
 * path, and this probe is a pure consumer of it.
 */
class StalenessMonitor
{
  public:
    /**
     * @param recorder the run's recorder (must be attached to
     *        @p graph and outlive this probe)
     * @param topics watched topic names; empty selects the standard
     *        inter-node set (poses, detections, tracks, costmap)
     */
    StalenessMonitor(ros::RosGraph &graph,
                     const trace::Recorder &recorder,
                     sim::Tick period = 100 * sim::oneMs,
                     std::vector<std::string> topics = {});

    void start() { task_.start(period_); }
    void stop() { task_.stop(); }

    const std::vector<StalenessRow> &rows() const { return rows_; }

  private:
    void sample();

    sim::EventQueue &eq_;
    const trace::Recorder &recorder_;
    sim::Tick period_;
    std::vector<StalenessRow> rows_;
    sim::PeriodicTask task_;
};

/**
 * Measures the recovery behaviour of every fault in a plan: how many
 * watch-topic publications landed inside the fault window (did the
 * degradation path keep the stack alive?) and how long after onset
 * the first post-window publication appeared (how fast did the stack
 * recover?).
 *
 * A pure consumer of the recorder's publish log: construction only
 * snapshots the plan's windows, and every measurement is computed on
 * demand from the recorded publications — no taps, no private event
 * buffer. A watch topic that never published leaves recoveryMs -1.
 */
class RecoveryProbe
{
  public:
    /**
     * @param recorder the run's recorder (must be attached to the
     *        graph the faults disturb, and outlive this probe)
     */
    RecoveryProbe(const trace::Recorder &recorder,
                  const fault::FaultPlan &plan);

    /** One record per plan fault, in plan order. */
    struct Record
    {
        std::string watchTopic;
        sim::Tick onset = 0;
        sim::Tick windowEnd = 0;
        std::uint64_t publishedDuringWindow = 0;
        double recoveryMs = -1.0; ///< onset -> first post-window pub
    };

    /** Measurements per plan fault, from the publish log. */
    std::vector<Record> records() const;

    /** Fold this probe's measurements into injector outcomes. */
    void fill(std::vector<fault::FaultOutcome> &outcomes) const;

  private:
    const trace::Recorder &recorder_;
    std::vector<Record> windows_; ///< plan windows, counts unset
};

} // namespace av::prof

#endif // AVSCOPE_CORE_PROBES_HH
