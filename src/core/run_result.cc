#include "core/run_result.hh"

#include <algorithm>

namespace av::prof {

namespace {

/** The four traced paths in reporting order. */
constexpr Path kPaths[] = {
    Path::Localization,
    Path::CostmapPoints,
    Path::CostmapVisionObj,
    Path::CostmapClusterObj,
};

double
secondsOf(const std::vector<std::pair<std::string, double>> &table,
          const std::string &owner)
{
    for (const auto &[name, seconds] : table)
        if (name == owner)
            return seconds;
    return 0.0;
}

} // namespace

const util::SampleSeries *
RunResult::findNodeSeries(const std::string &name) const
{
    for (const NamedSeries &node : nodes)
        if (node.name == name)
            return &node.series;
    return nullptr;
}

const util::SampleSeries *
RunResult::findPathSeries(Path path) const
{
    for (const NamedSeries &row : paths)
        if (row.name == pathName(path))
            return &row.series;
    return nullptr;
}

std::vector<NodeLatency>
RunResult::nodeLatencies() const
{
    std::vector<NodeLatency> out;
    out.reserve(nodes.size());
    for (const NamedSeries &node : nodes)
        out.push_back({node.name, node.series.summarize()});
    return out;
}

double
RunResult::worstCaseP99() const
{
    double worst = 0.0;
    for (const NamedSeries &row : paths)
        worst = std::max(worst, row.series.quantile(0.99));
    return worst;
}

double
RunResult::worstCaseMean() const
{
    double worst = 0.0;
    for (const NamedSeries &row : paths)
        worst = std::max(worst, row.series.running().mean());
    return worst;
}

double
RunResult::worstCaseMax() const
{
    double worst = 0.0;
    for (const NamedSeries &row : paths) {
        if (row.series.count() > 0)
            worst = std::max(worst, row.series.running().max());
    }
    return worst;
}

double
RunResult::cpuSecondsOf(const std::string &owner) const
{
    return secondsOf(cpuSecondsByOwner, owner);
}

double
RunResult::gpuSecondsOf(const std::string &owner) const
{
    return secondsOf(gpuSecondsByOwner, owner);
}

double
RunResult::resilienceOf(const std::string &name) const
{
    return secondsOf(resilience, name);
}

std::uint64_t
RunResult::violationsOf(stack::InvariantKind kind) const
{
    std::uint64_t n = 0;
    for (const stack::SafetyViolation &v : violations)
        n += v.kind == kind;
    return n;
}

RunResult
snapshotRun(const CharacterizationRun &run, std::string label)
{
    RunResult out;
    out.label = std::move(label);

    for (const perception::PerceptionNode *node :
         run.stack().nodes()) {
        if (node->name() == "costmap_generator") {
            const auto *costmap = static_cast<
                const perception::CostmapGeneratorNode *>(node);
            out.nodes.push_back({"costmap_generator_obj",
                                 costmap->latencySeries()});
            out.nodes.push_back({"costmap_generator_points",
                                 costmap->pointsLatencySeries()});
            continue;
        }
        out.nodes.push_back({node->name(), node->latencySeries()});
    }

    for (const Path path : kPaths)
        out.paths.push_back({pathName(path),
                             run.paths().series(path)});

    out.drops = run.drops();
    out.counters = run.counters();

    for (const auto &[owner, row] : run.utilization().rows())
        out.utilization.push_back(
            {owner, row.cpuShare, row.gpuShare});
    out.totalCpu = run.utilization().totalCpu();
    out.totalGpu = run.utilization().totalGpu();

    out.cpuWatts = run.power().cpuWatts();
    out.gpuWatts = run.power().gpuWatts();
    out.cpuEnergyJ = run.power().cpuEnergyJ();
    out.gpuEnergyJ = run.power().gpuEnergyJ();

    const auto &cpu_acct = run.machine().cpu().accounting();
    const auto &gpu_acct = run.machine().gpu().accounting();
    out.cpuSecondsByOwner.assign(
        cpu_acct.busySecondsByOwner.begin(),
        cpu_acct.busySecondsByOwner.end());
    out.gpuSecondsByOwner.assign(
        gpu_acct.activeSecondsByOwner.begin(),
        gpu_acct.activeSecondsByOwner.end());

    out.faults = run.faultOutcomes();
    for (const StalenessRow &row : run.staleness().rows())
        out.staleness.push_back({row.topic, row.ageMs});
    out.resilience = run.resilienceCounters();
    out.violations = run.safetyViolations();
    out.transportMode =
        ros::transportModeName(run.config().transport.mode);
    out.transport = run.graph().transportCounters();
    out.trace = run.traceSummary();
    return out;
}

} // namespace av::prof
