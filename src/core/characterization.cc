#include "core/characterization.hh"

#include "util/logging.hh"

namespace av::prof {

std::shared_ptr<DriveData>
makeDrive(const world::ScenarioConfig &scenario_cfg,
          sim::Tick duration, const world::RecorderConfig &recorder)
{
    auto drive = std::make_shared<DriveData>();
    drive->scenarioConfig = scenario_cfg;
    drive->duration = duration;

    const world::Scenario scenario(scenario_cfg);
    const world::LidarModel lidar;
    const world::CameraModel camera;
    const world::GnssModel gnss;
    const world::ImuModel imu;

    // Mapping pass first (ndt_mapping). Standard mapping practice:
    // the pass is driven on a quiet street — moving vehicles and
    // pedestrians would be baked into the map as ghost geometry
    // along the lane and capture the scan matcher. Parked cars and
    // buildings (identical streams, same seed) stay as landmarks.
    world::ScenarioConfig mapping_cfg = scenario_cfg;
    mapping_cfg.nVehicles = 0;
    mapping_cfg.nPedestrians = 0;
    const world::Scenario mapping_scenario(mapping_cfg);
    const world::MapBuilder map_builder;
    const double loop_s =
        scenario.routeLength() / scenario_cfg.egoSpeed;
    const sim::Tick map_duration = sim::secondsToTicks(loop_s);
    drive->map =
        map_builder.build(mapping_scenario, lidar, map_duration);

    world::recordDrive(scenario, lidar, camera, gnss, imu, duration,
                       recorder, drive->bag);
    drive->initialPose = scenario.egoPoseAt(0);
    return drive;
}

CharacterizationRun::CharacterizationRun(
    std::shared_ptr<const DriveData> drive, const RunConfig &config)
    : drive_(std::move(drive)), config_(config)
{
    AV_ASSERT(drive_ != nullptr, "null drive data");
    eq_ = std::make_unique<sim::EventQueue>();
    recorder_.setEnabled(config_.trace);
    machine_ = std::make_unique<hw::Machine>(*eq_, config_.machine);
    machine_->setTraceRecorder(&recorder_);
    graph_ = std::make_unique<ros::RosGraph>(*machine_, config_.transport);
    graph_->setTraceRecorder(&recorder_);
    // Overrides must be in place before the stack subscribes.
    graph_->setQueueDepthOverrides(config_.queueDepths);
    stack_ = std::make_unique<stack::AutowareStack>(
        *graph_, drive_->map, config_.stack, config_.calibration,
        drive_->initialPose);
    tracer_ = std::make_unique<PathTracer>(*graph_);
    util_ = std::make_unique<UtilizationMonitor>(
        *eq_, *machine_, config_.samplePeriod);
    power_ = std::make_unique<PowerMonitor>(*eq_, *machine_,
                                            config_.samplePeriod);
    staleness_ = std::make_unique<StalenessMonitor>(*graph_,
                                                    recorder_);
    if (!config_.faults.empty()) {
        // Constructor-time validation: a typo'd node name throws
        // std::invalid_argument here, before any simulation runs.
        injector_ = std::make_unique<fault::FaultInjector>(
            *graph_, config_.faults);
        recovery_ = std::make_unique<RecoveryProbe>(recorder_,
                                                    config_.faults);
    }
    if (config_.safety.enabled) {
        // Ground truth is rebuilt from the drive's config — the
        // same pure queries the sensors sampled when recording.
        safetyScenario_ = std::make_unique<world::Scenario>(
            drive_->scenarioConfig);
        safety_ = std::make_unique<stack::SafetyMonitor>(
            *graph_, *stack_, *safetyScenario_, config_.safety,
            drive_->duration);
    }
}

CharacterizationRun::~CharacterizationRun() = default;

void
CharacterizationRun::execute()
{
    AV_ASSERT(!executed_, "CharacterizationRun executed twice");
    executed_ = true;
    if (injector_)
        injector_->arm();
    util_->start();
    power_->start();
    staleness_->start();
    if (safety_)
        safety_->start();
    drive_->bag.replay(*graph_);
    eq_->runUntil(drive_->duration + config_.drainGrace);
    util_->stop();
    power_->stop();
    staleness_->stop();
    if (safety_)
        safety_->stop();
    // Drain whatever is still in flight (bounded).
    eq_->runUntil(drive_->duration + 2 * config_.drainGrace);
}

trace::Summary
CharacterizationRun::traceSummary() const
{
    return recorder_.enabled() ? trace::analyze(recorder_)
                               : trace::Summary();
}

std::vector<DropRow>
CharacterizationRun::drops() const
{
    return collectDrops(*graph_);
}

std::vector<CounterRow>
CharacterizationRun::counters() const
{
    return collectCounters(stack_->nodes());
}

std::vector<NodeLatency>
CharacterizationRun::nodeLatencies() const
{
    std::vector<NodeLatency> out;
    for (const perception::PerceptionNode *node : stack_->nodes()) {
        if (node->name() == "costmap_generator") {
            const auto *costmap =
                static_cast<const perception::CostmapGeneratorNode
                                *>(node);
            out.push_back(
                {"costmap_generator_obj",
                 costmap->latencySeries().summarize()});
            out.push_back(
                {"costmap_generator_points",
                 costmap->pointsLatencySeries().summarize()});
            continue;
        }
        out.push_back(
            {node->name(), node->latencySeries().summarize()});
    }
    return out;
}

std::vector<fault::FaultOutcome>
CharacterizationRun::faultOutcomes() const
{
    if (!injector_)
        return {};
    std::vector<fault::FaultOutcome> out = injector_->outcomes();
    recovery_->fill(out);
    return out;
}

std::vector<std::pair<std::string, double>>
CharacterizationRun::resilienceCounters() const
{
    const stack::AutowareStack &s = *stack_;
    double lidar_only = 0.0, coasts = 0.0, reseeds = 0.0;
    double stale_events = 0.0, crash_discarded = 0.0;
    if (const auto *fusion = s.fusion())
        lidar_only = static_cast<double>(fusion->lidarOnlyCount());
    if (const auto *tracker = s.trackerNode())
        coasts = static_cast<double>(tracker->coastCount());
    if (const auto *ndt = s.ndt())
        reseeds = static_cast<double>(ndt->reseedCount());
    if (const auto *wd = s.watchdog())
        stale_events =
            static_cast<double>(wd->totalStaleEvents());
    for (const ros::Node *node : graph_->nodes()) {
        for (const auto &sub : node->subscriptions())
            crash_discarded += static_cast<double>(
                sub->stats().crashDiscarded);
    }
    return {{"fusion_lidar_only", lidar_only},
            {"tracker_coasts", coasts},
            {"ndt_reseeds", reseeds},
            {"watchdog_stale_events", stale_events},
            {"crash_discarded", crash_discarded}};
}

std::vector<stack::SafetyViolation>
CharacterizationRun::safetyViolations() const
{
    return safety_ ? safety_->violations()
                   : std::vector<stack::SafetyViolation>();
}

const util::SampleSeries *
CharacterizationRun::findNodeLatencySeries(
    const std::string &name) const
{
    const perception::CostmapGeneratorNode *costmap =
        stack_->costmap();
    if (name == "costmap_generator_obj")
        return costmap ? &costmap->latencySeries() : nullptr;
    if (name == "costmap_generator_points")
        return costmap ? &costmap->pointsLatencySeries() : nullptr;
    const perception::PerceptionNode *node = stack_->find(name);
    return node ? &node->latencySeries() : nullptr;
}

} // namespace av::prof
