/**
 * @file
 * One-call orchestration of the paper's methodology (Fig. 3):
 * record a drive once (sensor bag + point-cloud map), then replay
 * it into an instrumented stack configuration and harvest every
 * measurement the paper reports.
 */

#ifndef AVSCOPE_CORE_CHARACTERIZATION_HH
#define AVSCOPE_CORE_CHARACTERIZATION_HH

#include <memory>
#include <string>
#include <vector>

#include "core/probes.hh"
#include "fault/fault.hh"
#include "ros/bag.hh"
#include "trace/dag.hh"
#include "stack/autoware_stack.hh"
#include "stack/safety.hh"
#include "world/map_builder.hh"
#include "world/recorder.hh"

namespace av::prof {

/**
 * The reproducible inputs: one recorded drive and its map. Shared
 * by every configuration under comparison — the ROSBAG-replay
 * methodology.
 */
struct DriveData
{
    world::ScenarioConfig scenarioConfig;
    ros::Bag bag;
    pc::PointCloud map;
    sim::Tick duration = 0;
    /** Operator-provided initial pose (Autoware's rviz "2D Pose
     *  Estimate"): the ego's ground-truth pose at t = 0. */
    geom::Pose2 initialPose;
};

/**
 * Record a drive and build its map.
 * @param scenario_cfg world knobs
 * @param duration     drive length
 */
std::shared_ptr<DriveData>
makeDrive(const world::ScenarioConfig &scenario_cfg,
          sim::Tick duration,
          const world::RecorderConfig &recorder =
              world::RecorderConfig());

/** One characterization run's configuration. */
struct RunConfig
{
    stack::StackOptions stack;
    hw::MachineConfig machine = stack::defaultMachine();
    ros::TransportConfig transport; ///< middleware transport cost
    stack::NodeCalibration calibration = stack::defaultCalibration();
    sim::Tick samplePeriod = sim::oneSec; ///< probe grain
    sim::Tick drainGrace = 3 * sim::oneSec; ///< run-out after bag end
    /**
     * Fault schedule to arm against this run; empty = clean replay.
     * Folds into the experiment cache key, so a faulted run caches
     * separately from the clean one.
     */
    fault::FaultPlan faults;

    /**
     * Retain the full trace event stream (publish/deliver hops,
     * activation spans, CPU tasks, GPU kernels) and attach the DAG
     * analysis to the result. The recorder's publish log is always
     * on regardless — this switches on the per-event retention.
     * Folds into the experiment cache key.
     */
    bool trace = false;

    /**
     * Safety-invariant thresholds; SafetyOptions::enabled arms the
     * SafetyMonitor against this run (ground truth rebuilt from the
     * drive's ScenarioConfig). Folds into the experiment cache key.
     */
    stack::SafetyOptions safety;

    /**
     * Runtime subscription queue-depth overrides, applied before the
     * stack subscribes (the closed-loop optimizer's knob). Source
     * literals — and avgraph's static extraction of them — stay
     * intact. Folds into the experiment cache key.
     */
    std::vector<ros::QueueDepthOverride> queueDepths;
};

/** Per-node latency result. */
struct NodeLatency
{
    std::string name;
    util::DistributionSummary summary;
};

/**
 * A full instrumented replay.
 */
class CharacterizationRun
{
  public:
    CharacterizationRun(std::shared_ptr<const DriveData> drive,
                        const RunConfig &config = RunConfig());
    ~CharacterizationRun();

    /** Replay the bag to completion. */
    void execute();

    const stack::AutowareStack &stack() const { return *stack_; }
    const PathTracer &paths() const { return *tracer_; }
    const UtilizationMonitor &utilization() const { return *util_; }
    const PowerMonitor &power() const { return *power_; }
    const StalenessMonitor &staleness() const { return *staleness_; }

    /**
     * The run's single recording surface: the publish log is always
     * on; the full event stream only when RunConfig::trace is set.
     */
    const trace::Recorder &recorder() const { return recorder_; }

    /**
     * DAG analysis of the traced drive (critical path, per-node
     * slack, bottleneck classes). Summary::enabled is false when the
     * run was untraced.
     */
    trace::Summary traceSummary() const;

    /**
     * The machine / middleware under test. The mutable overloads
     * exist for pre-execute() customization (taps, fault injection);
     * every consumer of a *finished* run reads through the const
     * path, which is what lets the experiment Runner hand completed
     * runs out as const references.
     */
    const hw::Machine &machine() const { return *machine_; }
    hw::Machine &machine() { return *machine_; }
    const ros::RosGraph &graph() const { return *graph_; }
    ros::RosGraph &graph() { return *graph_; }

    const RunConfig &config() const { return config_; }

    std::vector<DropRow> drops() const;
    std::vector<CounterRow> counters() const;

    /**
     * Per-node latency distributions; the costmap node reports its
     * two callbacks separately as costmap_generator_obj /
     * costmap_generator_points, matching the paper's Fig. 5 rows.
     */
    std::vector<NodeLatency> nodeLatencies() const;

    /**
     * Latency series of one node; nullptr when the node is unknown
     * or its stack section is disabled. Mirrors
     * AutowareStack::find() — lookups across src/core report
     * absence through their return value, never by aborting, so
     * callers choose between handling and asserting.
     */
    const util::SampleSeries *
    findNodeLatencySeries(const std::string &name) const;

    /**
     * Per-fault outcomes: transport counters from the injector
     * merged with the recovery probe's measurements. Empty for a
     * clean (fault-free) run.
     */
    std::vector<fault::FaultOutcome> faultOutcomes() const;

    /**
     * Degradation-response counters (LiDAR-only fusions, tracker
     * coasts, NDT reseeds, watchdog stale events, crash-discarded
     * messages). Fixed schema; zeros when degradation is off.
     */
    std::vector<std::pair<std::string, double>>
    resilienceCounters() const;

    /**
     * Safety-invariant violations recorded by the monitor, in
     * detection order. Empty when RunConfig::safety is disabled.
     */
    std::vector<stack::SafetyViolation> safetyViolations() const;

    /** The monitor itself; nullptr when safety is disabled. */
    const stack::SafetyMonitor *safety() const
    {
        return safety_.get();
    }

  private:
    std::shared_ptr<const DriveData> drive_;
    RunConfig config_;
    std::unique_ptr<sim::EventQueue> eq_;
    /** Declared before machine_/graph_: both hold raw pointers to
     *  it, so it must be destroyed after them. */
    trace::Recorder recorder_;
    std::unique_ptr<hw::Machine> machine_;
    std::unique_ptr<ros::RosGraph> graph_;
    std::unique_ptr<stack::AutowareStack> stack_;
    std::unique_ptr<PathTracer> tracer_;
    std::unique_ptr<UtilizationMonitor> util_;
    std::unique_ptr<PowerMonitor> power_;
    std::unique_ptr<StalenessMonitor> staleness_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<RecoveryProbe> recovery_;
    /** Ground truth + monitor; only built when safety is enabled.
     *  Declared after stack_ (the monitor taps its topics). */
    std::unique_ptr<world::Scenario> safetyScenario_;
    std::unique_ptr<stack::SafetyMonitor> safety_;
    bool executed_ = false;
};

} // namespace av::prof

#endif // AVSCOPE_CORE_CHARACTERIZATION_HH
