/**
 * @file
 * Report writer: dump every measurement of a CharacterizationRun to
 * a directory of CSV files (one per paper table/figure), so results
 * can be plotted or diffed outside the process.
 */

#ifndef AVSCOPE_CORE_REPORT_HH
#define AVSCOPE_CORE_REPORT_HH

#include <string>

#include "core/run_result.hh"

namespace av::prof {

/**
 * Write the result's measurements into @p directory (created if
 * needed):
 *
 *   node_latency.csv   — per-node distribution summaries (Fig. 5)
 *   paths.csv          — per-path end-to-end summaries (Fig. 6)
 *   drops.csv          — per-subscription drop stats (Table III)
 *   utilization.csv    — per-owner CPU/GPU shares (Table V)
 *   power.csv          — mean watts and energy (Table VI)
 *   counters.csv       — µarch counters + instruction mix
 *                        (Table VII / Fig. 7)
 *
 * @return false when the directory cannot be created or a file
 *         cannot be written
 */
bool writeRunReport(const RunResult &result,
                    const std::string &directory);

/** Snapshot a live run and write its report. */
bool writeRunReport(const CharacterizationRun &run,
                    const std::string &directory);

} // namespace av::prof

#endif // AVSCOPE_CORE_REPORT_HH
