/**
 * @file
 * RunResult — the complete measurement record of one finished
 * characterization run, detached from the live simulation objects.
 *
 * CharacterizationRun owns an EventQueue, a Machine and a node
 * graph; everything a bench or report consumes afterwards is *data*.
 * RunResult snapshots that data into one self-contained value that
 * can be copied between threads, serialized into the result cache
 * (src/exp) and reloaded byte-identically — the unit of work the
 * experiment Runner returns.
 */

#ifndef AVSCOPE_CORE_RUN_RESULT_HH
#define AVSCOPE_CORE_RUN_RESULT_HH

#include <string>
#include <utility>
#include <vector>

#include "core/characterization.hh"

namespace av::prof {

/** One named latency distribution (a Fig. 5 row). */
struct NamedSeries
{
    std::string name;
    util::SampleSeries series;
};

/** One owner's utilization statistics (a Table V row). */
struct UtilizationResult
{
    std::string owner;
    util::RunningStats cpuShare;
    util::RunningStats gpuShare;
};

/**
 * Everything the benches, examples and report writer read from a
 * completed run. Plain data: copyable, serializable, immutable by
 * convention once produced.
 */
struct RunResult
{
    std::string label;

    /** Per-node latency, costmap callbacks split (Fig. 5 order). */
    std::vector<NamedSeries> nodes;

    /** End-to-end latency per computation path (Fig. 6). */
    std::vector<NamedSeries> paths;

    std::vector<DropRow> drops;           ///< Table III
    std::vector<CounterRow> counters;     ///< Table VII / Fig. 7
    std::vector<UtilizationResult> utilization; ///< Table V
    util::RunningStats totalCpu;          ///< machine-wide CPU share
    util::RunningStats totalGpu;          ///< machine-wide GPU share
    util::RunningStats cpuWatts;          ///< Table VI
    util::RunningStats gpuWatts;
    double cpuEnergyJ = 0.0;
    double gpuEnergyJ = 0.0;

    /** Per-owner device busy seconds (the Fig. 8 CPU/GPU split). */
    std::vector<std::pair<std::string, double>> cpuSecondsByOwner;
    std::vector<std::pair<std::string, double>> gpuSecondsByOwner;

    /** Per-fault outcomes; empty for a clean run. */
    std::vector<fault::FaultOutcome> faults;

    /** Per-topic publication-age distributions (staleness probe). */
    std::vector<NamedSeries> staleness;

    /** Degradation-response counters (fixed schema). */
    std::vector<std::pair<std::string, double>> resilience;

    /**
     * Safety-invariant violations in detection order; empty when
     * the run's SafetyOptions were disabled (or nothing breached).
     */
    std::vector<stack::SafetyViolation> violations;

    /** Transport mode the run used ("copy" / "loan"). */
    std::string transportMode;

    /**
     * Host-side payload accounting summed over every topic: the
     * receipts behind the zero-copy contract (a clean Loan-mode run
     * has transport.payloadCopies == 0). Deterministic — counts
     * follow the simulated message flow.
     */
    ros::TransportCounters transport;

    /**
     * Execution-DAG analysis of the traced drive: critical path,
     * per-node slack, bottleneck classes, traced edges. Empty with
     * trace.enabled == false when the run was untraced. A pure
     * function of the deterministic event stream, so it serializes
     * byte-identically across worker counts and transport modes.
     */
    trace::Summary trace;

    /** Resilience counter by name; 0 when unknown. */
    double resilienceOf(const std::string &name) const;

    /** Violations of one invariant kind. */
    std::uint64_t violationsOf(stack::InvariantKind kind) const;

    /**
     * Latency series of one node; nullptr when the node was absent
     * (disabled stack section or misspelled name). The costmap's two
     * callbacks appear as costmap_generator_obj /
     * costmap_generator_points, matching the paper's Fig. 5 rows.
     */
    const util::SampleSeries *
    findNodeSeries(const std::string &name) const;

    /** Series of one computation path; nullptr when untraced. */
    const util::SampleSeries *findPathSeries(Path path) const;

    /** Per-node summaries in stack order (Fig. 5 rows). */
    std::vector<NodeLatency> nodeLatencies() const;

    /** Worst-path p99 — the paper's end-to-end latency metric. */
    double worstCaseP99() const;

    /** Worst-path mean. */
    double worstCaseMean() const;

    /** Worst observed end-to-end latency across all paths. */
    double worstCaseMax() const;

    /** CPU busy seconds attributed to @p owner; 0 when unknown. */
    double cpuSecondsOf(const std::string &owner) const;

    /** GPU active seconds attributed to @p owner; 0 when unknown. */
    double gpuSecondsOf(const std::string &owner) const;
};

/**
 * Snapshot a finished run into a detached RunResult.
 * @param run   a CharacterizationRun after execute()
 * @param label human-readable experiment label carried through
 *              reports
 */
RunResult snapshotRun(const CharacterizationRun &run,
                      std::string label = "");

} // namespace av::prof

#endif // AVSCOPE_CORE_RUN_RESULT_HH
