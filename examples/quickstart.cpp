/**
 * @file
 * Quickstart: record a short synthetic drive, build its map, replay
 * it through the full Autoware-like stack on the simulated platform,
 * and read back the measurements — the whole public API in ~60
 * lines of logic.
 *
 *   ./quickstart [seconds]
 */

#include <cstdio>
#include <cstdlib>

#include "core/characterization.hh"

using namespace av;

int
main(int argc, char **argv)
{
    const long seconds = argc > 1 ? std::atol(argv[1]) : 20;

    // 1. The world: a deterministic city-block drive. makeDrive()
    //    records every sensor into a bag and builds the NDT map
    //    (the ndt_mapping step).
    world::ScenarioConfig scenario;
    scenario.seed = 42;
    auto drive = prof::makeDrive(
        scenario, static_cast<sim::Tick>(seconds) * sim::oneSec);
    std::printf("recorded %zu messages, map has %zu points\n",
                drive->bag.totalMessages(), drive->map.size());

    // 2. The system under test: pick a detector, keep the default
    //    platform (4-core CPU + 11 TFLOPS GPU).
    prof::RunConfig config;
    config.stack.detector = perception::DetectorKind::Yolov3;

    // 3. Replay.
    prof::CharacterizationRun run(drive, config);
    run.execute();

    // 4. Read the measurements.
    std::printf("\nper-node latency (ms):\n");
    for (const auto &node : run.nodeLatencies()) {
        std::printf("  %-26s mean %7.2f   p99 %8.2f   (n=%zu)\n",
                    node.name.c_str(), node.summary.mean,
                    node.summary.p99, node.summary.count);
    }

    std::printf("\nend-to-end paths (ms):\n");
    for (const auto path :
         {prof::Path::Localization, prof::Path::CostmapPoints,
          prof::Path::CostmapVisionObj,
          prof::Path::CostmapClusterObj}) {
        const auto s = run.paths().series(path).summarize();
        std::printf("  %-20s mean %7.2f   p99 %8.2f\n",
                    prof::pathName(path), s.mean, s.p99);
    }

    std::printf("\nplatform: CPU %.1f%% busy / %.1f W, GPU %.1f%% "
                "busy / %.1f W\n",
                100 * run.utilization().totalCpu().mean(),
                run.power().cpuWatts().mean(),
                100 * run.utilization().totalGpu().mean(),
                run.power().gpuWatts().mean());

    std::printf("tracker currently follows %zu confirmed objects\n",
                run.stack().trackerNode()->tracker()
                    .confirmedCount());
    std::printf("\nworst-path p99 = %.1f ms -> the 100 ms budget is "
                "%s\n",
                run.paths().worstCaseP99(),
                run.paths().worstCaseP99() > 100.0 ? "EXCEEDED"
                                                   : "met");
    return 0;
}
