/**
 * @file
 * Closed-loop driving: the perception algorithms localize and
 * perceive from live synthetic sensors while the planning/actuation
 * layer (global route -> rollout local planner -> pure pursuit ->
 * twist filter) drives a kinematic vehicle around the block —
 * the control pipeline the paper could not exercise for lack of an
 * annotated map (SIII-C), completing the Fig. 1 architecture.
 *
 * Everything runs functionally (host time, no platform simulation):
 * this example is about the algorithms closing the loop.
 *
 *   ./closed_loop_driving [seconds]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "perception/costmap.hh"
#include "perception/euclidean_cluster.hh"
#include "perception/motion_predict.hh"
#include "perception/ndt.hh"
#include "perception/ray_ground_filter.hh"
#include "planning/local_planner.hh"
#include "planning/pure_pursuit.hh"
#include "planning/route.hh"
#include "planning/vehicle.hh"
#include "pointcloud/voxel_grid.hh"
#include "world/map_builder.hh"
#include "world/scenario.hh"
#include "world/sensors.hh"

using namespace av;

int
main(int argc, char **argv)
{
    const long seconds = argc > 1 ? std::atol(argv[1]) : 60;

    // World + sensors.
    world::ScenarioConfig cfg;
    cfg.seed = 7;
    cfg.vehicleLaneOffset = 3.4; // keep NPC traffic in its own lane
    cfg.nVehicles = 8;
    const world::Scenario scenario(cfg);
    const world::LidarModel lidar;

    // Map the block first (ndt_mapping pass on the scripted route,
    // driven on a quiet street so no moving traffic is baked into
    // the map as ghost geometry).
    std::printf("building point-cloud map ...\n");
    world::ScenarioConfig quiet_cfg = cfg;
    quiet_cfg.nVehicles = 0;
    quiet_cfg.nPedestrians = 0;
    const world::Scenario quiet(quiet_cfg);
    const world::MapBuilder map_builder;
    const double loop_s =
        scenario.routeLength() / cfg.egoSpeed;
    const pc::PointCloud map = map_builder.build(
        quiet, lidar, sim::secondsToTicks(loop_s));

    perception::NdtMatcher matcher;
    matcher.setMap(map);

    // Global route: the whole loop (lane-level map annotation).
    const plan::RouteNetwork net =
        plan::RouteNetwork::fromLoop(scenario.route(), 4.0);
    const geom::Pose2 start = scenario.egoPoseAt(0);
    // Destination: one spacing behind the start along the loop, so
    // the A* route covers the entire block.
    const geom::Vec2 behind =
        scenario.poseOnRoute(scenario.routeLength() - 6.0).p;
    const auto global = plan::densifyPath(
        net.plan(start.p, behind), 1.0);
    std::printf("global route: %zu waypoints, %.0f m\n",
                global.size(), scenario.routeLength());

    // The controlled vehicle.
    plan::VehicleModel car(start);
    plan::TwistFilter twist_filter;
    geom::Pose2 believed = start; // NDT's estimate

    const double dt = 0.05; // 20 Hz control
    double loc_err_acc = 0.0, loc_err_max = 0.0;
    double min_actor_gap = 1e9;
    double distance_driven = 0.0;
    geom::Pose2 prev_pose = car.pose();
    int steps = 0;

    for (double t = 0.0; t < static_cast<double>(seconds);
         t += dt, ++steps) {
        const auto now = sim::secondsToTicks(t);

        // ---- perception (LiDAR pipeline, every control tick) ----
        const pc::PointCloud scan =
            lidar.scan(scenario, now, car.pose());

        // Localization: voxel filter + NDT against the map.
        const pc::PointCloud filtered =
            pc::voxelGridDownsample(scan, 1.5);
        // Dead-reckon the guess with wheel odometry (speed + yaw
        // rate), as ndt_matching does with the IMU.
        geom::Pose2 guess = believed;
        guess.yaw = geom::normalizeAngle(believed.yaw +
                                         car.yawRate() * dt);
        guess.p += geom::Vec2{car.speed() * dt, 0.0}.rotated(
            guess.yaw);
        const perception::NdtResult fix =
            matcher.align(filtered, guess);
        believed = fix.pose;
        const double loc_err = (believed.p - car.pose().p).norm();
        loc_err_acc += loc_err;
        loc_err_max = std::max(loc_err_max, loc_err);

        // Obstacles: ground removal + clustering + costmap.
        const auto split = perception::rayGroundFilter(
            scan, perception::RayGroundConfig());
        const auto cropped = perception::cropForClustering(
            split.noGround, perception::ClusterConfig());
        const auto clusters = perception::euclideanCluster(
            cropped, perception::ClusterConfig());
        perception::ObjectList objects;
        for (const auto &cl : clusters) {
            perception::DetectedObject obj;
            obj.position =
                believed.apply({cl.centroid.x, cl.centroid.y});
            obj.yaw = cl.yaw + believed.yaw;
            obj.length = cl.length;
            obj.width = cl.width;
            objects.objects.push_back(obj);
        }
        const perception::Costmap costmap =
            perception::generateObjectCostmap(
                objects, believed, perception::CostmapConfig());

        // ---- planning + control ----
        const plan::Trajectory local =
            plan::planLocal(global, believed, costmap);
        const plan::Twist raw =
            plan::purePursuit(local, believed, car.speed());
        const plan::Twist cmd = twist_filter.apply(raw, dt);
        car.step(cmd, dt);

        distance_driven += (car.pose().p - prev_pose.p).norm();
        prev_pose = car.pose();

        // Safety: closest actor.
        for (const auto &actor : scenario.actorsAt(now)) {
            min_actor_gap = std::min(
                min_actor_gap,
                (actor.box.pose.p - car.pose().p).norm());
        }

        if (steps % 100 == 0) {
            std::printf("t=%5.1fs pos=(%7.1f,%7.1f) v=%4.1f m/s  "
                        "loc err %.2f m  clusters %2zu  rollout %+d\n",
                        t, car.pose().p.x, car.pose().p.y,
                        car.speed(), loc_err, clusters.size(),
                        local.rolloutIndex);
        }
    }

    std::printf("\ndrove %.0f m in %ld s (avg %.1f m/s)\n",
                distance_driven, seconds,
                distance_driven / static_cast<double>(seconds));
    std::printf("NDT localization error: mean %.2f m, max %.2f m\n",
                loc_err_acc / steps, loc_err_max);
    std::printf("closest approach to another actor: %.1f m\n",
                min_actor_gap);
    return 0;
}
