/**
 * @file
 * The paper's complete methodology (Fig. 3) as one program: record a
 * drive once, then characterize the stack under a chosen detector —
 * per-node latency, end-to-end paths, drops, utilization, power, and
 * PAPI-style counters — and print a full report.
 *
 *   ./full_drive_characterization --detector ssd512 --duration 120
 */

#include <cstdio>
#include <iostream>

#include "core/characterization.hh"
#include "core/report.hh"
#include "util/flags.hh"
#include "util/table.hh"

using namespace av;

int
main(int argc, char **argv)
{
    const util::Flags flags(
        argc, argv, {"detector", "duration", "seed", "csv", "report"});
    const std::string which = flags.getString("detector", "ssd512");
    perception::DetectorKind kind = perception::DetectorKind::Ssd512;
    if (which == "ssd300")
        kind = perception::DetectorKind::Ssd300;
    else if (which == "yolo" || which == "yolov3")
        kind = perception::DetectorKind::Yolov3;
    else if (which != "ssd512")
        util::fatal("unknown detector '", which,
                    "' (ssd512|ssd300|yolo)");

    world::ScenarioConfig scenario;
    scenario.seed =
        static_cast<std::uint64_t>(flags.getInt("seed", 2020));
    const auto duration = static_cast<sim::Tick>(
                              flags.getInt("duration", 60)) *
                          sim::oneSec;

    util::inform("recording drive + building map ...");
    auto drive = prof::makeDrive(scenario, duration);

    prof::RunConfig config;
    config.stack.detector = kind;
    util::inform("replaying with ", perception::detectorName(kind),
                 " ...");
    prof::CharacterizationRun run(drive, config);
    run.execute();

    // ------------------------------------------------ latency
    util::Table latency("Single-node latency (ms)",
                        {"node", "n", "min", "q1", "mean", "q3",
                         "p99", "max"});
    for (const auto &node : run.nodeLatencies()) {
        const auto &s = node.summary;
        latency.addRow({node.name, std::to_string(s.count),
                        util::Table::num(s.min),
                        util::Table::num(s.q1),
                        util::Table::num(s.mean),
                        util::Table::num(s.q3),
                        util::Table::num(s.p99),
                        util::Table::num(s.max)});
    }
    latency.print(std::cout);

    // ------------------------------------------------ paths
    util::Table paths("\nEnd-to-end computation paths (ms)",
                      {"path", "mean", "p99", "max"});
    for (const auto path :
         {prof::Path::Localization, prof::Path::CostmapPoints,
          prof::Path::CostmapVisionObj,
          prof::Path::CostmapClusterObj}) {
        const auto s = run.paths().series(path).summarize();
        paths.addRow({prof::pathName(path),
                      util::Table::num(s.mean),
                      util::Table::num(s.p99),
                      util::Table::num(s.max)});
    }
    paths.print(std::cout);

    // ------------------------------------------------ drops
    util::Table drops("\nDropped messages", {"topic", "node",
                                             "drop rate"});
    for (const auto &row : run.drops()) {
        if (row.dropped == 0)
            continue;
        drops.addRow({row.topic, row.node,
                      util::Table::pct(row.dropRate())});
    }
    drops.print(std::cout);

    // ------------------------------------------------ utilization
    util::Table util_table("\nUtilization (1 Hz sampling)",
                           {"owner", "CPU share", "GPU residency"});
    for (const auto &[owner, row] : run.utilization().rows()) {
        util_table.addRow({owner,
                           util::Table::pct(row.cpuShare.mean()),
                           util::Table::pct(row.gpuShare.mean())});
    }
    util_table.addRow(
        {"TOTAL",
         util::Table::pct(run.utilization().totalCpu().mean()),
         util::Table::pct(run.utilization().totalGpu().mean())});
    util_table.print(std::cout);

    std::printf("\npower: CPU %.1f W, GPU %.1f W (energy %.0f J + "
                "%.0f J)\n",
                run.power().cpuWatts().mean(),
                run.power().gpuWatts().mean(),
                run.power().cpuEnergyJ(), run.power().gpuEnergyJ());

    // ------------------------------------------------ counters
    util::Table counters("\nMicroarchitecture counters",
                         {"node", "IPC", "L1r miss", "L1w miss",
                          "br miss", "mix"});
    for (const auto &row : run.counters()) {
        if (row.mix.total() == 0)
            continue;
        counters.addRow({row.node, util::Table::num(row.ipc),
                         util::Table::pct(row.l1ReadMissRate),
                         util::Table::pct(row.l1WriteMissRate),
                         util::Table::pct(row.branchMissRate),
                         row.mix.mixString()});
    }
    counters.print(std::cout);

    // Optional: dump everything as CSV for plotting.
    if (flags.has("report")) {
        const std::string dir = flags.getString("report");
        if (prof::writeRunReport(run, dir))
            util::inform("CSV report written to ", dir);
        else
            util::warn("could not write report to ", dir);
    }
    return 0;
}
