/**
 * @file
 * The paper's complete methodology (Fig. 3) as one program, driven
 * through the experiment engine: describe the run as an
 * ExperimentSpec, submit it to a Runner, and print the full report
 * from the returned RunResult — per-node latency, end-to-end paths,
 * drops, utilization, power, and PAPI-style counters. Repeated
 * invocations with the same parameters come back from the result
 * cache without recording or replaying anything.
 *
 *   ./full_drive_characterization --detector ssd512 --duration 120
 */

#include <cstdio>
#include <iostream>

#include "core/report.hh"
#include "exp/runner.hh"
#include "util/flags.hh"
#include "util/table.hh"

using namespace av;

int
main(int argc, char **argv)
{
    const util::Flags flags(argc, argv,
                            {"detector", "duration", "seed", "csv",
                             "report", "no-cache"});
    const std::string which = flags.getString("detector", "ssd512");
    perception::DetectorKind kind = perception::DetectorKind::Ssd512;
    if (which == "ssd300")
        kind = perception::DetectorKind::Ssd300;
    else if (which == "yolo" || which == "yolov3")
        kind = perception::DetectorKind::Yolov3;
    else if (which != "ssd512")
        util::fatal("unknown detector '", which,
                    "' (ssd512|ssd300|yolo)");

    exp::RunnerConfig engine;
    if (!flags.getBool("no-cache"))
        engine.cacheDir = exp::defaultCacheDir();
    exp::Runner runner(engine);

    const prof::RunResult &run = runner.result(runner.submit(
        exp::spec()
            .detector(kind)
            .durationSeconds(flags.getInt("duration", 60))
            .seed(static_cast<std::uint64_t>(
                flags.getInt("seed", 2020)))
            .named(perception::detectorName(kind))));

    // ------------------------------------------------ latency
    util::Table latency("Single-node latency (ms)",
                        {"node", "n", "min", "q1", "mean", "q3",
                         "p99", "max"});
    for (const auto &node : run.nodeLatencies()) {
        const auto &s = node.summary;
        latency.addRow({node.name, std::to_string(s.count),
                        util::Table::num(s.min),
                        util::Table::num(s.q1),
                        util::Table::num(s.mean),
                        util::Table::num(s.q3),
                        util::Table::num(s.p99),
                        util::Table::num(s.max)});
    }
    latency.print(std::cout);

    // ------------------------------------------------ paths
    util::Table paths("\nEnd-to-end computation paths (ms)",
                      {"path", "mean", "p99", "max"});
    for (const auto &row : run.paths) {
        const auto s = row.series.summarize();
        paths.addRow({row.name, util::Table::num(s.mean),
                      util::Table::num(s.p99),
                      util::Table::num(s.max)});
    }
    paths.print(std::cout);

    // ------------------------------------------------ drops
    util::Table drops("\nDropped messages", {"topic", "node",
                                             "drop rate"});
    for (const auto &row : run.drops) {
        if (row.dropped == 0)
            continue;
        drops.addRow({row.topic, row.node,
                      util::Table::pct(row.dropRate())});
    }
    drops.print(std::cout);

    // ------------------------------------------------ utilization
    util::Table util_table("\nUtilization (1 Hz sampling)",
                           {"owner", "CPU share", "GPU residency"});
    for (const auto &row : run.utilization) {
        util_table.addRow({row.owner,
                           util::Table::pct(row.cpuShare.mean()),
                           util::Table::pct(row.gpuShare.mean())});
    }
    util_table.addRow({"TOTAL",
                       util::Table::pct(run.totalCpu.mean()),
                       util::Table::pct(run.totalGpu.mean())});
    util_table.print(std::cout);

    std::printf("\npower: CPU %.1f W, GPU %.1f W (energy %.0f J + "
                "%.0f J)\n",
                run.cpuWatts.mean(), run.gpuWatts.mean(),
                run.cpuEnergyJ, run.gpuEnergyJ);

    // ------------------------------------------------ counters
    util::Table counters("\nMicroarchitecture counters",
                         {"node", "IPC", "L1r miss", "L1w miss",
                          "br miss", "mix"});
    for (const auto &row : run.counters) {
        if (row.mix.total() == 0)
            continue;
        counters.addRow({row.node, util::Table::num(row.ipc),
                         util::Table::pct(row.l1ReadMissRate),
                         util::Table::pct(row.l1WriteMissRate),
                         util::Table::pct(row.branchMissRate),
                         row.mix.mixString()});
    }
    counters.print(std::cout);

    // Optional: dump everything as CSV for plotting.
    if (flags.has("report")) {
        const std::string dir = flags.getString("report");
        if (prof::writeRunReport(run, dir))
            util::inform("CSV report written to ", dir);
        else
            util::warn("could not write report to ", dir);
    }
    return 0;
}
