/**
 * @file
 * Detector trade-off study: the decision the paper motivates but
 * declares out of scope (§IV-A: "assessing the most propitious image
 * detector ... since other metrics such as detection precision also
 * need to be taken into account"). We quantify both sides on the
 * same drive: perception quality (how many ground-truth actors near
 * the ego end up tracked with a semantic label) against latency,
 * drops, and power, for each detector.
 *
 *   ./detector_tradeoff_study --duration 60
 */

#include <cstdio>
#include <iostream>
#include <set>

#include "core/characterization.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace av;

int
main(int argc, char **argv)
{
    const util::Flags flags(argc, argv, {"duration", "seed"});
    world::ScenarioConfig scenario;
    scenario.seed =
        static_cast<std::uint64_t>(flags.getInt("seed", 2020));
    const auto duration = static_cast<sim::Tick>(
                              flags.getInt("duration", 60)) *
                          sim::oneSec;
    auto drive = prof::makeDrive(scenario, duration);

    util::Table table(
        "Detector trade-off on the same drive",
        {"detector", "vision mean (ms)", "e2e p99 (ms)",
         "img drops", "labeled tracks", "GPU W", "total W"});

    for (const auto kind : {perception::DetectorKind::Ssd512,
                            perception::DetectorKind::Ssd300,
                            perception::DetectorKind::Yolov3}) {
        prof::RunConfig cfg;
        cfg.stack.detector = kind;
        util::inform("running ", perception::detectorName(kind),
                     " ...");
        prof::CharacterizationRun run(drive, cfg);

        // Quality probe: sample labeled confirmed tracks once per
        // second via a tap on the tracker output.
        std::set<std::uint32_t> labeled_truth;
        run.graph()
            .topic<perception::ObjectList>(
                perception::topics::trackedObjects)
            .addTap([&](const ros::Stamped<perception::ObjectList>
                            &msg) {
                for (const auto &obj : msg.data.objects) {
                    if (obj.label != perception::Label::Unknown &&
                        obj.truthId != 0)
                        labeled_truth.insert(obj.truthId);
                }
            });

        run.execute();

        const util::SampleSeries *vision =
            run.findNodeLatencySeries("vision_detection");
        AV_ASSERT(vision != nullptr, "vision node missing");
        const auto vis = vision->summarize();
        double drops = 0.0;
        for (const auto &row : run.drops())
            if (row.topic == "/image_raw")
                drops = row.dropRate();
        const double cpu_w = run.power().cpuWatts().mean();
        const double gpu_w = run.power().gpuWatts().mean();

        table.addRow(
            {perception::detectorName(kind),
             util::Table::num(vis.mean),
             util::Table::num(run.paths().worstCaseP99()),
             util::Table::pct(drops),
             std::to_string(labeled_truth.size()),
             util::Table::num(gpu_w),
             util::Table::num(cpu_w + gpu_w)});
    }

    table.print(std::cout);
    std::cout
        << "\n'labeled tracks' counts distinct ground-truth actors"
           " that were ever tracked with a semantic class — the"
           " recall side of the trade-off the latency/power columns"
           " price.\n";
    return 0;
}
