
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_probes.cc" "tests/CMakeFiles/avscope_tests.dir/core/test_probes.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/core/test_probes.cc.o.d"
  "/root/repo/tests/core/test_report.cc" "tests/CMakeFiles/avscope_tests.dir/core/test_report.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/core/test_report.cc.o.d"
  "/root/repo/tests/dnn/test_dnn.cc" "tests/CMakeFiles/avscope_tests.dir/dnn/test_dnn.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/dnn/test_dnn.cc.o.d"
  "/root/repo/tests/geom/test_geom.cc" "tests/CMakeFiles/avscope_tests.dir/geom/test_geom.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/geom/test_geom.cc.o.d"
  "/root/repo/tests/hw/test_cpu.cc" "tests/CMakeFiles/avscope_tests.dir/hw/test_cpu.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/hw/test_cpu.cc.o.d"
  "/root/repo/tests/hw/test_gpu.cc" "tests/CMakeFiles/avscope_tests.dir/hw/test_gpu.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/hw/test_gpu.cc.o.d"
  "/root/repo/tests/hw/test_interference.cc" "tests/CMakeFiles/avscope_tests.dir/hw/test_interference.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/hw/test_interference.cc.o.d"
  "/root/repo/tests/perception/test_algorithms.cc" "tests/CMakeFiles/avscope_tests.dir/perception/test_algorithms.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/perception/test_algorithms.cc.o.d"
  "/root/repo/tests/perception/test_ndt.cc" "tests/CMakeFiles/avscope_tests.dir/perception/test_ndt.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/perception/test_ndt.cc.o.d"
  "/root/repo/tests/perception/test_tracker.cc" "tests/CMakeFiles/avscope_tests.dir/perception/test_tracker.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/perception/test_tracker.cc.o.d"
  "/root/repo/tests/planning/test_planning.cc" "tests/CMakeFiles/avscope_tests.dir/planning/test_planning.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/planning/test_planning.cc.o.d"
  "/root/repo/tests/planning/test_planning_properties.cc" "tests/CMakeFiles/avscope_tests.dir/planning/test_planning_properties.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/planning/test_planning_properties.cc.o.d"
  "/root/repo/tests/pointcloud/test_pointcloud.cc" "tests/CMakeFiles/avscope_tests.dir/pointcloud/test_pointcloud.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/pointcloud/test_pointcloud.cc.o.d"
  "/root/repo/tests/ros/test_graph.cc" "tests/CMakeFiles/avscope_tests.dir/ros/test_graph.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/ros/test_graph.cc.o.d"
  "/root/repo/tests/ros/test_ros.cc" "tests/CMakeFiles/avscope_tests.dir/ros/test_ros.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/ros/test_ros.cc.o.d"
  "/root/repo/tests/sim/test_event_queue.cc" "tests/CMakeFiles/avscope_tests.dir/sim/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/sim/test_event_queue.cc.o.d"
  "/root/repo/tests/sim/test_event_queue_fuzz.cc" "tests/CMakeFiles/avscope_tests.dir/sim/test_event_queue_fuzz.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/sim/test_event_queue_fuzz.cc.o.d"
  "/root/repo/tests/sim/test_periodic.cc" "tests/CMakeFiles/avscope_tests.dir/sim/test_periodic.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/sim/test_periodic.cc.o.d"
  "/root/repo/tests/stack/test_integration.cc" "tests/CMakeFiles/avscope_tests.dir/stack/test_integration.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/stack/test_integration.cc.o.d"
  "/root/repo/tests/stack/test_stack_config.cc" "tests/CMakeFiles/avscope_tests.dir/stack/test_stack_config.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/stack/test_stack_config.cc.o.d"
  "/root/repo/tests/uarch/test_uarch.cc" "tests/CMakeFiles/avscope_tests.dir/uarch/test_uarch.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/uarch/test_uarch.cc.o.d"
  "/root/repo/tests/util/test_flags.cc" "tests/CMakeFiles/avscope_tests.dir/util/test_flags.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/util/test_flags.cc.o.d"
  "/root/repo/tests/util/test_logging.cc" "tests/CMakeFiles/avscope_tests.dir/util/test_logging.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/util/test_logging.cc.o.d"
  "/root/repo/tests/util/test_random.cc" "tests/CMakeFiles/avscope_tests.dir/util/test_random.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/util/test_random.cc.o.d"
  "/root/repo/tests/util/test_stats.cc" "tests/CMakeFiles/avscope_tests.dir/util/test_stats.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/util/test_stats.cc.o.d"
  "/root/repo/tests/util/test_table.cc" "tests/CMakeFiles/avscope_tests.dir/util/test_table.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/util/test_table.cc.o.d"
  "/root/repo/tests/world/test_bag_io.cc" "tests/CMakeFiles/avscope_tests.dir/world/test_bag_io.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/world/test_bag_io.cc.o.d"
  "/root/repo/tests/world/test_scenario_properties.cc" "tests/CMakeFiles/avscope_tests.dir/world/test_scenario_properties.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/world/test_scenario_properties.cc.o.d"
  "/root/repo/tests/world/test_world.cc" "tests/CMakeFiles/avscope_tests.dir/world/test_world.cc.o" "gcc" "tests/CMakeFiles/avscope_tests.dir/world/test_world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/av_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/av_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/av_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/av_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/av_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/av_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ros/CMakeFiles/av_ros.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/av_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/av_world.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/av_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/planning/CMakeFiles/av_planning.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/av_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/av_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
