# Empty compiler generated dependencies file for avscope_tests.
# This may be replaced when dependencies are built.
