file(REMOVE_RECURSE
  "CMakeFiles/fig6_e2e_latency.dir/fig6_e2e_latency.cc.o"
  "CMakeFiles/fig6_e2e_latency.dir/fig6_e2e_latency.cc.o.d"
  "fig6_e2e_latency"
  "fig6_e2e_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_e2e_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
