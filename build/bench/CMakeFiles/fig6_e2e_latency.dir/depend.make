# Empty dependencies file for fig6_e2e_latency.
# This may be replaced when dependencies are built.
