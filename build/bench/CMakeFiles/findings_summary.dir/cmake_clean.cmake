file(REMOVE_RECURSE
  "CMakeFiles/findings_summary.dir/findings_summary.cc.o"
  "CMakeFiles/findings_summary.dir/findings_summary.cc.o.d"
  "findings_summary"
  "findings_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/findings_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
