# Empty compiler generated dependencies file for findings_summary.
# This may be replaced when dependencies are built.
