file(REMOVE_RECURSE
  "CMakeFiles/fig5_node_latency.dir/fig5_node_latency.cc.o"
  "CMakeFiles/fig5_node_latency.dir/fig5_node_latency.cc.o.d"
  "fig5_node_latency"
  "fig5_node_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_node_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
