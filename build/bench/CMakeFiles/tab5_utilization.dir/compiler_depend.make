# Empty compiler generated dependencies file for tab5_utilization.
# This may be replaced when dependencies are built.
