file(REMOVE_RECURSE
  "CMakeFiles/tab5_utilization.dir/tab5_utilization.cc.o"
  "CMakeFiles/tab5_utilization.dir/tab5_utilization.cc.o.d"
  "tab5_utilization"
  "tab5_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
