# Empty dependencies file for fig7_instruction_mix.
# This may be replaced when dependencies are built.
