file(REMOVE_RECURSE
  "CMakeFiles/fig7_instruction_mix.dir/fig7_instruction_mix.cc.o"
  "CMakeFiles/fig7_instruction_mix.dir/fig7_instruction_mix.cc.o.d"
  "fig7_instruction_mix"
  "fig7_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
