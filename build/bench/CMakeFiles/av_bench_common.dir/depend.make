# Empty dependencies file for av_bench_common.
# This may be replaced when dependencies are built.
