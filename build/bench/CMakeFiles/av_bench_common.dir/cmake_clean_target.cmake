file(REMOVE_RECURSE
  "libav_bench_common.a"
)
