file(REMOVE_RECURSE
  "CMakeFiles/av_bench_common.dir/common.cc.o"
  "CMakeFiles/av_bench_common.dir/common.cc.o.d"
  "libav_bench_common.a"
  "libav_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
