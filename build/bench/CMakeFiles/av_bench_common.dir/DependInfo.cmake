
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common.cc" "bench/CMakeFiles/av_bench_common.dir/common.cc.o" "gcc" "bench/CMakeFiles/av_bench_common.dir/common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/av_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/av_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/av_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/av_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/av_world.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/av_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/av_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/av_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/ros/CMakeFiles/av_ros.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/av_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/av_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/av_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
