file(REMOVE_RECURSE
  "CMakeFiles/tab6_power.dir/tab6_power.cc.o"
  "CMakeFiles/tab6_power.dir/tab6_power.cc.o.d"
  "tab6_power"
  "tab6_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
