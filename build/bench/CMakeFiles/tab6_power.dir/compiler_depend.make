# Empty compiler generated dependencies file for tab6_power.
# This may be replaced when dependencies are built.
