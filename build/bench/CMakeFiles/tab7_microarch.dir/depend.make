# Empty dependencies file for tab7_microarch.
# This may be replaced when dependencies are built.
