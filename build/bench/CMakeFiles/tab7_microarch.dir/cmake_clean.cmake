file(REMOVE_RECURSE
  "CMakeFiles/tab7_microarch.dir/tab7_microarch.cc.o"
  "CMakeFiles/tab7_microarch.dir/tab7_microarch.cc.o.d"
  "tab7_microarch"
  "tab7_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
