# Empty dependencies file for tab3_dropped_messages.
# This may be replaced when dependencies are built.
