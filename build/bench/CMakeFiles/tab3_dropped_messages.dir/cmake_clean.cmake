file(REMOVE_RECURSE
  "CMakeFiles/tab3_dropped_messages.dir/tab3_dropped_messages.cc.o"
  "CMakeFiles/tab3_dropped_messages.dir/tab3_dropped_messages.cc.o.d"
  "tab3_dropped_messages"
  "tab3_dropped_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_dropped_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
