file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipeline.dir/ablation_pipeline.cc.o"
  "CMakeFiles/ablation_pipeline.dir/ablation_pipeline.cc.o.d"
  "ablation_pipeline"
  "ablation_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
