# Empty dependencies file for ablation_pipeline.
# This may be replaced when dependencies are built.
