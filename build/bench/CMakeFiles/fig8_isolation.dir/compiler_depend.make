# Empty compiler generated dependencies file for fig8_isolation.
# This may be replaced when dependencies are built.
