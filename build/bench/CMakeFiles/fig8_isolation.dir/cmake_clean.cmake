file(REMOVE_RECURSE
  "CMakeFiles/fig8_isolation.dir/fig8_isolation.cc.o"
  "CMakeFiles/fig8_isolation.dir/fig8_isolation.cc.o.d"
  "fig8_isolation"
  "fig8_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
