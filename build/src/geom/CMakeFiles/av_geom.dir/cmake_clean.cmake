file(REMOVE_RECURSE
  "CMakeFiles/av_geom.dir/mat.cc.o"
  "CMakeFiles/av_geom.dir/mat.cc.o.d"
  "CMakeFiles/av_geom.dir/pose.cc.o"
  "CMakeFiles/av_geom.dir/pose.cc.o.d"
  "libav_geom.a"
  "libav_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
