
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/mat.cc" "src/geom/CMakeFiles/av_geom.dir/mat.cc.o" "gcc" "src/geom/CMakeFiles/av_geom.dir/mat.cc.o.d"
  "/root/repo/src/geom/pose.cc" "src/geom/CMakeFiles/av_geom.dir/pose.cc.o" "gcc" "src/geom/CMakeFiles/av_geom.dir/pose.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/av_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
