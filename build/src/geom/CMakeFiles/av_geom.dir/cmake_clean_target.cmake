file(REMOVE_RECURSE
  "libav_geom.a"
)
