# Empty compiler generated dependencies file for av_geom.
# This may be replaced when dependencies are built.
