file(REMOVE_RECURSE
  "CMakeFiles/av_planning.dir/local_planner.cc.o"
  "CMakeFiles/av_planning.dir/local_planner.cc.o.d"
  "CMakeFiles/av_planning.dir/pure_pursuit.cc.o"
  "CMakeFiles/av_planning.dir/pure_pursuit.cc.o.d"
  "CMakeFiles/av_planning.dir/route.cc.o"
  "CMakeFiles/av_planning.dir/route.cc.o.d"
  "CMakeFiles/av_planning.dir/vehicle.cc.o"
  "CMakeFiles/av_planning.dir/vehicle.cc.o.d"
  "libav_planning.a"
  "libav_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
