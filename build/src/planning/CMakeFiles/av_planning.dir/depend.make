# Empty dependencies file for av_planning.
# This may be replaced when dependencies are built.
