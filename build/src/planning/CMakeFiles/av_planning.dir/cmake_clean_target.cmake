file(REMOVE_RECURSE
  "libav_planning.a"
)
