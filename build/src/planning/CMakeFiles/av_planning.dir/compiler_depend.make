# Empty compiler generated dependencies file for av_planning.
# This may be replaced when dependencies are built.
