file(REMOVE_RECURSE
  "CMakeFiles/av_core.dir/characterization.cc.o"
  "CMakeFiles/av_core.dir/characterization.cc.o.d"
  "CMakeFiles/av_core.dir/probes.cc.o"
  "CMakeFiles/av_core.dir/probes.cc.o.d"
  "CMakeFiles/av_core.dir/report.cc.o"
  "CMakeFiles/av_core.dir/report.cc.o.d"
  "libav_core.a"
  "libav_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
