file(REMOVE_RECURSE
  "libav_core.a"
)
