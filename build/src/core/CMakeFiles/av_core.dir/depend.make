# Empty dependencies file for av_core.
# This may be replaced when dependencies are built.
