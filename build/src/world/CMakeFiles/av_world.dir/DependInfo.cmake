
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/bag_io.cc" "src/world/CMakeFiles/av_world.dir/bag_io.cc.o" "gcc" "src/world/CMakeFiles/av_world.dir/bag_io.cc.o.d"
  "/root/repo/src/world/map_builder.cc" "src/world/CMakeFiles/av_world.dir/map_builder.cc.o" "gcc" "src/world/CMakeFiles/av_world.dir/map_builder.cc.o.d"
  "/root/repo/src/world/recorder.cc" "src/world/CMakeFiles/av_world.dir/recorder.cc.o" "gcc" "src/world/CMakeFiles/av_world.dir/recorder.cc.o.d"
  "/root/repo/src/world/scenario.cc" "src/world/CMakeFiles/av_world.dir/scenario.cc.o" "gcc" "src/world/CMakeFiles/av_world.dir/scenario.cc.o.d"
  "/root/repo/src/world/sensors.cc" "src/world/CMakeFiles/av_world.dir/sensors.cc.o" "gcc" "src/world/CMakeFiles/av_world.dir/sensors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pointcloud/CMakeFiles/av_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/ros/CMakeFiles/av_ros.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/av_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/av_util.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/av_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/av_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/av_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
