file(REMOVE_RECURSE
  "libav_world.a"
)
