# Empty compiler generated dependencies file for av_world.
# This may be replaced when dependencies are built.
