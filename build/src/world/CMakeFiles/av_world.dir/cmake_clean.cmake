file(REMOVE_RECURSE
  "CMakeFiles/av_world.dir/bag_io.cc.o"
  "CMakeFiles/av_world.dir/bag_io.cc.o.d"
  "CMakeFiles/av_world.dir/map_builder.cc.o"
  "CMakeFiles/av_world.dir/map_builder.cc.o.d"
  "CMakeFiles/av_world.dir/recorder.cc.o"
  "CMakeFiles/av_world.dir/recorder.cc.o.d"
  "CMakeFiles/av_world.dir/scenario.cc.o"
  "CMakeFiles/av_world.dir/scenario.cc.o.d"
  "CMakeFiles/av_world.dir/sensors.cc.o"
  "CMakeFiles/av_world.dir/sensors.cc.o.d"
  "libav_world.a"
  "libav_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
