# Empty compiler generated dependencies file for av_ros.
# This may be replaced when dependencies are built.
