file(REMOVE_RECURSE
  "CMakeFiles/av_ros.dir/ros.cc.o"
  "CMakeFiles/av_ros.dir/ros.cc.o.d"
  "libav_ros.a"
  "libav_ros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_ros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
