file(REMOVE_RECURSE
  "libav_ros.a"
)
