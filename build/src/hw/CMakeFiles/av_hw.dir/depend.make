# Empty dependencies file for av_hw.
# This may be replaced when dependencies are built.
