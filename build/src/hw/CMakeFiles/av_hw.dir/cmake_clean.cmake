file(REMOVE_RECURSE
  "CMakeFiles/av_hw.dir/cpu.cc.o"
  "CMakeFiles/av_hw.dir/cpu.cc.o.d"
  "CMakeFiles/av_hw.dir/gpu.cc.o"
  "CMakeFiles/av_hw.dir/gpu.cc.o.d"
  "CMakeFiles/av_hw.dir/machine.cc.o"
  "CMakeFiles/av_hw.dir/machine.cc.o.d"
  "CMakeFiles/av_hw.dir/power.cc.o"
  "CMakeFiles/av_hw.dir/power.cc.o.d"
  "libav_hw.a"
  "libav_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
