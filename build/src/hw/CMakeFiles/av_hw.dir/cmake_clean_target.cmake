file(REMOVE_RECURSE
  "libav_hw.a"
)
