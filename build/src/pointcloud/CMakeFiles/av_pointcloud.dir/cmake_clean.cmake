file(REMOVE_RECURSE
  "CMakeFiles/av_pointcloud.dir/cloud.cc.o"
  "CMakeFiles/av_pointcloud.dir/cloud.cc.o.d"
  "CMakeFiles/av_pointcloud.dir/kdtree.cc.o"
  "CMakeFiles/av_pointcloud.dir/kdtree.cc.o.d"
  "CMakeFiles/av_pointcloud.dir/voxel_grid.cc.o"
  "CMakeFiles/av_pointcloud.dir/voxel_grid.cc.o.d"
  "libav_pointcloud.a"
  "libav_pointcloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_pointcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
