# Empty dependencies file for av_pointcloud.
# This may be replaced when dependencies are built.
