
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pointcloud/cloud.cc" "src/pointcloud/CMakeFiles/av_pointcloud.dir/cloud.cc.o" "gcc" "src/pointcloud/CMakeFiles/av_pointcloud.dir/cloud.cc.o.d"
  "/root/repo/src/pointcloud/kdtree.cc" "src/pointcloud/CMakeFiles/av_pointcloud.dir/kdtree.cc.o" "gcc" "src/pointcloud/CMakeFiles/av_pointcloud.dir/kdtree.cc.o.d"
  "/root/repo/src/pointcloud/voxel_grid.cc" "src/pointcloud/CMakeFiles/av_pointcloud.dir/voxel_grid.cc.o" "gcc" "src/pointcloud/CMakeFiles/av_pointcloud.dir/voxel_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/av_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/av_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/av_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
