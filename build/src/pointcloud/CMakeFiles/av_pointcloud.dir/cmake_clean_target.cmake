file(REMOVE_RECURSE
  "libav_pointcloud.a"
)
