# CMake generated Testfile for 
# Source directory: /root/repo/src/pointcloud
# Build directory: /root/repo/build/src/pointcloud
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
