# Empty dependencies file for av_util.
# This may be replaced when dependencies are built.
