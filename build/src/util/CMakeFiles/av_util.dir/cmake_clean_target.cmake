file(REMOVE_RECURSE
  "libav_util.a"
)
