file(REMOVE_RECURSE
  "CMakeFiles/av_util.dir/flags.cc.o"
  "CMakeFiles/av_util.dir/flags.cc.o.d"
  "CMakeFiles/av_util.dir/logging.cc.o"
  "CMakeFiles/av_util.dir/logging.cc.o.d"
  "CMakeFiles/av_util.dir/random.cc.o"
  "CMakeFiles/av_util.dir/random.cc.o.d"
  "CMakeFiles/av_util.dir/stats.cc.o"
  "CMakeFiles/av_util.dir/stats.cc.o.d"
  "CMakeFiles/av_util.dir/table.cc.o"
  "CMakeFiles/av_util.dir/table.cc.o.d"
  "libav_util.a"
  "libav_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
