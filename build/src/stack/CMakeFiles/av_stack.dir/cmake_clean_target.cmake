file(REMOVE_RECURSE
  "libav_stack.a"
)
