file(REMOVE_RECURSE
  "CMakeFiles/av_stack.dir/autoware_stack.cc.o"
  "CMakeFiles/av_stack.dir/autoware_stack.cc.o.d"
  "CMakeFiles/av_stack.dir/config.cc.o"
  "CMakeFiles/av_stack.dir/config.cc.o.d"
  "libav_stack.a"
  "libav_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
