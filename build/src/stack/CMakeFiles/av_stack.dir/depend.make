# Empty dependencies file for av_stack.
# This may be replaced when dependencies are built.
