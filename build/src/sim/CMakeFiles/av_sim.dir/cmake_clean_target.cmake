file(REMOVE_RECURSE
  "libav_sim.a"
)
