# Empty compiler generated dependencies file for av_sim.
# This may be replaced when dependencies are built.
