file(REMOVE_RECURSE
  "CMakeFiles/av_sim.dir/event_queue.cc.o"
  "CMakeFiles/av_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/av_sim.dir/periodic.cc.o"
  "CMakeFiles/av_sim.dir/periodic.cc.o.d"
  "libav_sim.a"
  "libav_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
