file(REMOVE_RECURSE
  "libav_dnn.a"
)
