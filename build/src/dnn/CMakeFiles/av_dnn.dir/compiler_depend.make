# Empty compiler generated dependencies file for av_dnn.
# This may be replaced when dependencies are built.
