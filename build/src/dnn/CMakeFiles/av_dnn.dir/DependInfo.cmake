
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/cost.cc" "src/dnn/CMakeFiles/av_dnn.dir/cost.cc.o" "gcc" "src/dnn/CMakeFiles/av_dnn.dir/cost.cc.o.d"
  "/root/repo/src/dnn/network.cc" "src/dnn/CMakeFiles/av_dnn.dir/network.cc.o" "gcc" "src/dnn/CMakeFiles/av_dnn.dir/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/av_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/av_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/av_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/av_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
