file(REMOVE_RECURSE
  "CMakeFiles/av_dnn.dir/cost.cc.o"
  "CMakeFiles/av_dnn.dir/cost.cc.o.d"
  "CMakeFiles/av_dnn.dir/network.cc.o"
  "CMakeFiles/av_dnn.dir/network.cc.o.d"
  "libav_dnn.a"
  "libav_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
