file(REMOVE_RECURSE
  "libav_perception.a"
)
