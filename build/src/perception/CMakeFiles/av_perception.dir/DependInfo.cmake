
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/costmap.cc" "src/perception/CMakeFiles/av_perception.dir/costmap.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/costmap.cc.o.d"
  "/root/repo/src/perception/euclidean_cluster.cc" "src/perception/CMakeFiles/av_perception.dir/euclidean_cluster.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/euclidean_cluster.cc.o.d"
  "/root/repo/src/perception/fusion.cc" "src/perception/CMakeFiles/av_perception.dir/fusion.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/fusion.cc.o.d"
  "/root/repo/src/perception/imm_ukf_pda.cc" "src/perception/CMakeFiles/av_perception.dir/imm_ukf_pda.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/imm_ukf_pda.cc.o.d"
  "/root/repo/src/perception/motion_predict.cc" "src/perception/CMakeFiles/av_perception.dir/motion_predict.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/motion_predict.cc.o.d"
  "/root/repo/src/perception/ndt.cc" "src/perception/CMakeFiles/av_perception.dir/ndt.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/ndt.cc.o.d"
  "/root/repo/src/perception/node_base.cc" "src/perception/CMakeFiles/av_perception.dir/node_base.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/node_base.cc.o.d"
  "/root/repo/src/perception/nodes.cc" "src/perception/CMakeFiles/av_perception.dir/nodes.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/nodes.cc.o.d"
  "/root/repo/src/perception/objects.cc" "src/perception/CMakeFiles/av_perception.dir/objects.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/objects.cc.o.d"
  "/root/repo/src/perception/ray_ground_filter.cc" "src/perception/CMakeFiles/av_perception.dir/ray_ground_filter.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/ray_ground_filter.cc.o.d"
  "/root/repo/src/perception/vision_model.cc" "src/perception/CMakeFiles/av_perception.dir/vision_model.cc.o" "gcc" "src/perception/CMakeFiles/av_perception.dir/vision_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pointcloud/CMakeFiles/av_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/ros/CMakeFiles/av_ros.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/av_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/av_world.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/av_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/av_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/av_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/av_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/av_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
