# Empty compiler generated dependencies file for av_perception.
# This may be replaced when dependencies are built.
