file(REMOVE_RECURSE
  "CMakeFiles/av_perception.dir/costmap.cc.o"
  "CMakeFiles/av_perception.dir/costmap.cc.o.d"
  "CMakeFiles/av_perception.dir/euclidean_cluster.cc.o"
  "CMakeFiles/av_perception.dir/euclidean_cluster.cc.o.d"
  "CMakeFiles/av_perception.dir/fusion.cc.o"
  "CMakeFiles/av_perception.dir/fusion.cc.o.d"
  "CMakeFiles/av_perception.dir/imm_ukf_pda.cc.o"
  "CMakeFiles/av_perception.dir/imm_ukf_pda.cc.o.d"
  "CMakeFiles/av_perception.dir/motion_predict.cc.o"
  "CMakeFiles/av_perception.dir/motion_predict.cc.o.d"
  "CMakeFiles/av_perception.dir/ndt.cc.o"
  "CMakeFiles/av_perception.dir/ndt.cc.o.d"
  "CMakeFiles/av_perception.dir/node_base.cc.o"
  "CMakeFiles/av_perception.dir/node_base.cc.o.d"
  "CMakeFiles/av_perception.dir/nodes.cc.o"
  "CMakeFiles/av_perception.dir/nodes.cc.o.d"
  "CMakeFiles/av_perception.dir/objects.cc.o"
  "CMakeFiles/av_perception.dir/objects.cc.o.d"
  "CMakeFiles/av_perception.dir/ray_ground_filter.cc.o"
  "CMakeFiles/av_perception.dir/ray_ground_filter.cc.o.d"
  "CMakeFiles/av_perception.dir/vision_model.cc.o"
  "CMakeFiles/av_perception.dir/vision_model.cc.o.d"
  "libav_perception.a"
  "libav_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
