file(REMOVE_RECURSE
  "CMakeFiles/av_uarch.dir/branch.cc.o"
  "CMakeFiles/av_uarch.dir/branch.cc.o.d"
  "CMakeFiles/av_uarch.dir/cache.cc.o"
  "CMakeFiles/av_uarch.dir/cache.cc.o.d"
  "CMakeFiles/av_uarch.dir/opcounts.cc.o"
  "CMakeFiles/av_uarch.dir/opcounts.cc.o.d"
  "CMakeFiles/av_uarch.dir/pipeline.cc.o"
  "CMakeFiles/av_uarch.dir/pipeline.cc.o.d"
  "CMakeFiles/av_uarch.dir/profiler.cc.o"
  "CMakeFiles/av_uarch.dir/profiler.cc.o.d"
  "libav_uarch.a"
  "libav_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
