# Empty compiler generated dependencies file for av_uarch.
# This may be replaced when dependencies are built.
