
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch.cc" "src/uarch/CMakeFiles/av_uarch.dir/branch.cc.o" "gcc" "src/uarch/CMakeFiles/av_uarch.dir/branch.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/av_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/av_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/opcounts.cc" "src/uarch/CMakeFiles/av_uarch.dir/opcounts.cc.o" "gcc" "src/uarch/CMakeFiles/av_uarch.dir/opcounts.cc.o.d"
  "/root/repo/src/uarch/pipeline.cc" "src/uarch/CMakeFiles/av_uarch.dir/pipeline.cc.o" "gcc" "src/uarch/CMakeFiles/av_uarch.dir/pipeline.cc.o.d"
  "/root/repo/src/uarch/profiler.cc" "src/uarch/CMakeFiles/av_uarch.dir/profiler.cc.o" "gcc" "src/uarch/CMakeFiles/av_uarch.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/av_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
