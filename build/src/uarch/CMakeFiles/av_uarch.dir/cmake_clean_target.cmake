file(REMOVE_RECURSE
  "libav_uarch.a"
)
