# Empty compiler generated dependencies file for full_drive_characterization.
# This may be replaced when dependencies are built.
