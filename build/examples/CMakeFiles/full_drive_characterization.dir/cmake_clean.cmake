file(REMOVE_RECURSE
  "CMakeFiles/full_drive_characterization.dir/full_drive_characterization.cpp.o"
  "CMakeFiles/full_drive_characterization.dir/full_drive_characterization.cpp.o.d"
  "full_drive_characterization"
  "full_drive_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_drive_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
