file(REMOVE_RECURSE
  "CMakeFiles/closed_loop_driving.dir/closed_loop_driving.cpp.o"
  "CMakeFiles/closed_loop_driving.dir/closed_loop_driving.cpp.o.d"
  "closed_loop_driving"
  "closed_loop_driving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_loop_driving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
