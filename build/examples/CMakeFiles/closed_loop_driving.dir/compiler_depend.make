# Empty compiler generated dependencies file for closed_loop_driving.
# This may be replaced when dependencies are built.
