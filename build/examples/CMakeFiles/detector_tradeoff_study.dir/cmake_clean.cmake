file(REMOVE_RECURSE
  "CMakeFiles/detector_tradeoff_study.dir/detector_tradeoff_study.cpp.o"
  "CMakeFiles/detector_tradeoff_study.dir/detector_tradeoff_study.cpp.o.d"
  "detector_tradeoff_study"
  "detector_tradeoff_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_tradeoff_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
