# Empty compiler generated dependencies file for detector_tradeoff_study.
# This may be replaced when dependencies are built.
