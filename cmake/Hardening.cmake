# Hardened build modes shared by every avscope target.
#
#   AVSCOPE_WERROR=ON          -Wall -Wextra -Wshadow -Wconversion
#                              promoted to errors
#   AVSCOPE_SANITIZE=<list>    semicolon list of sanitizers, e.g.
#                              address;undefined  or  thread
#
# Warnings are applied per-target (avscope_harden) so imported
# third-party targets stay untouched; sanitizer instrumentation is
# global because every object linked into an image must agree on it.

function(avscope_harden target)
    target_compile_options(${target} PRIVATE
        -Wall -Wextra -Wshadow -Wconversion)
    if(AVSCOPE_WERROR)
        # -Wrestrict false-positives on GCC 12/13 std::string
        # concatenation (PR105329); keep it visible, not fatal.
        target_compile_options(${target} PRIVATE
            -Werror -Wno-error=restrict)
    endif()
endfunction()

if(AVSCOPE_SANITIZE)
    foreach(_av_san IN LISTS AVSCOPE_SANITIZE)
        if(NOT _av_san MATCHES "^(address|undefined|leak|thread)$")
            message(FATAL_ERROR
                "AVSCOPE_SANITIZE: unknown sanitizer '${_av_san}'")
        endif()
    endforeach()
    if("thread" IN_LIST AVSCOPE_SANITIZE AND
       ("address" IN_LIST AVSCOPE_SANITIZE OR
        "leak" IN_LIST AVSCOPE_SANITIZE))
        message(FATAL_ERROR
            "AVSCOPE_SANITIZE: thread cannot combine with"
            " address/leak")
    endif()
    string(REPLACE ";" "," _av_san_flags "${AVSCOPE_SANITIZE}")
    add_compile_options(
        -fsanitize=${_av_san_flags} -fno-omit-frame-pointer -g)
    add_link_options(-fsanitize=${_av_san_flags})
endif()
